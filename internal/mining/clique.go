package mining

import (
	"context"
	"fmt"

	"probgraph/internal/bitset"
	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/par"
	"probgraph/internal/sketch"
)

// Exact4Clique counts 4-cliques with the reformulated algorithm of
// Listing 2: for every oriented edge (u,v) the 3-clique completions
// C3 = N+_u ∩ N+_v are listed, and for every w ∈ C3 the count grows by
// |N+_w ∩ C3|. Under the degree ranking every 4-clique {a<b<c<d} is
// counted exactly once (u=a, v=b, w=c, closing at d).
// Work O(n·d³), depth O(log² d) (Table VI).
func Exact4Clique(o *graph.Oriented, workers int) int64 {
	ck, _ := Exact4CliqueCtx(context.Background(), o, workers)
	return ck
}

// Exact4CliqueCtx is Exact4Clique with cooperative cancellation.
func Exact4CliqueCtx(ctx context.Context, o *graph.Oriented, workers int) (int64, error) {
	n := o.NumVertices()
	return par.ReduceInt64Ctx(ctx, n, workers, func(lo, hi int) int64 {
		var ck int64
		var c3 []uint32
		for u := lo; u < hi; u++ {
			nu := o.NPlus(uint32(u))
			for _, v := range nu {
				c3 = graph.Intersect(nu, o.NPlus(v), c3[:0])
				for _, w := range c3 {
					ck += int64(graph.IntersectCount(o.NPlus(w), c3))
				}
			}
		}
		return ck
	})
}

// PG4Clique estimates the 4-clique count with the PG-enhanced Listing 2.
// Reconstruction note (documented in DESIGN.md): the listing marks only
// the inner cardinality |N+_w ∩ C3| blue.
//
//   - BF: C3 is enumerated exactly (its elements drive the w loop) and
//     the dominant inner cardinality uses the three-way AND
//     B_w ∧ B_u ∧ B_v — the AND of two filters approximates B_{C3} at
//     zero construction cost.
//   - 1-Hash with stored elements: fully sample-based. The common
//     elements of the two sketches are a bottom sample of C3; the w loop
//     runs over that sample only and the result is rescaled by
//     |̂C3|/|sample| — this is the paper's "MH explicitly eliminates
//     vertices" behaviour: much faster, somewhat less accurate.
//   - other sample-based sketches fall back to the exact C3 list with
//     the min-of-pairwise-estimates heuristic of core.IntCard3.
//
// pg must be built over the oriented neighborhoods (core.BuildOriented).
func PG4Clique(o *graph.Oriented, pg *core.PG, workers int) float64 {
	ck, _ := PG4CliqueCtx(context.Background(), o, pg, workers)
	return ck
}

// PG4CliqueCtx is PG4Clique with cooperative cancellation.
func PG4CliqueCtx(ctx context.Context, o *graph.Oriented, pg *core.PG, workers int) (float64, error) {
	if pg.Cfg.Kind == core.OneHash && pg.HasElems() {
		return pg4CliqueSampled(ctx, o, pg, workers)
	}
	n := o.NumVertices()
	return par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		var ck float64
		var c3 []uint32
		var bufs batchBufs
		tmp := make([]uint64, pg.RowWords())
		for u := lo; u < hi; u++ {
			nu := o.NPlus(uint32(u))
			for _, v := range nu {
				c3 = graph.Intersect(nu, o.NPlus(v), c3[:0])
				if len(c3) == 0 {
					continue
				}
				// The pair (u,v) is fixed across the w loop: batch the
				// triple as one materialized pair-AND streamed over C3.
				// Flat accumulation into ck keeps the original scalar
				// loop's addition order bit-for-bit.
				cnt, out := bufs.size(len(c3))
				pg.IntCard3Many(uint32(u), v, c3, tmp, cnt, out)
				for _, est := range out {
					ck += est
				}
			}
		}
		return ck
	})
}

// pg4CliqueSampled is the 1-Hash sample path: never touches the exact
// adjacency inside the pair loop. For every oriented edge (u, v), the
// intersection of the two bottom-k sketches yields both a C3 size
// estimate and a sample of C3's members (with their hash values — a
// bottom sample of C3 under the shared hash function); the inner
// cardinality is estimated per sampled w and extrapolated.
func pg4CliqueSampled(ctx context.Context, o *graph.Oriented, pg *core.PG, workers int) (float64, error) {
	n := o.NumVertices()
	k := pg.Cfg.K
	return par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		var ck float64
		sampleH := make([]uint64, 0, k)
		sampleE := make([]uint32, 0, k)
		for u := lo; u < hi; u++ {
			ru := pg.BottomKRow(uint32(u))
			for _, v := range o.NPlus(uint32(u)) {
				rv := pg.BottomKRow(v)
				// Sorted-merge: collect common hash values and elements.
				sampleH, sampleE = sampleH[:0], sampleE[:0]
				i, j := 0, 0
				for i < len(ru.Hashes) && j < len(rv.Hashes) {
					switch {
					case ru.Hashes[i] == rv.Hashes[j]:
						sampleH = append(sampleH, ru.Hashes[i])
						sampleE = append(sampleE, ru.Elems[i])
						i++
						j++
					case ru.Hashes[i] < rv.Hashes[j]:
						i++
					default:
						j++
					}
				}
				if len(sampleH) == 0 {
					continue
				}
				estC3 := pg.IntCard(uint32(u), v)
				if estC3 <= 0 {
					continue
				}
				c3sketch := sketch.BottomK{Hashes: sampleH}
				kCap := len(sampleH)
				var inner float64
				for _, w := range sampleE {
					jac := sketch.OneHashJaccard(pg.BottomKRow(w), c3sketch, kCap)
					if jac > 0 {
						inner += jac / (1 + jac) * (float64(pg.SetSize(w)) + estC3)
					}
				}
				ck += inner * estC3 / float64(len(sampleE))
			}
		}
		return ck
	})
}

// ExactKClique counts k-cliques (k >= 3) by recursive neighborhood
// intersection over the oriented DAG — the generalization of Listing 2
// used to cross-check the 4-clique path and to exercise larger patterns.
func ExactKClique(o *graph.Oriented, k, workers int) int64 {
	ck, _ := ExactKCliqueCtx(context.Background(), o, k, workers)
	return ck
}

// ExactKCliqueCtx is ExactKClique with cooperative cancellation.
func ExactKCliqueCtx(ctx context.Context, o *graph.Oriented, k, workers int) (int64, error) {
	if k < 3 {
		return 0, nil
	}
	n := o.NumVertices()
	return par.ReduceInt64Ctx(ctx, n, workers, func(lo, hi int) int64 {
		var total int64
		scratch := make([][]uint32, k)
		for v := lo; v < hi; v++ {
			total += kcliqueRec(o, o.NPlus(uint32(v)), k-1, scratch, 0)
		}
		return total
	})
}

// kcliqueRec counts completions of a partial clique whose common
// out-neighborhood is cand; depth more levels remain.
func kcliqueRec(o *graph.Oriented, cand []uint32, depth int, scratch [][]uint32, level int) int64 {
	if depth == 1 {
		return int64(len(cand))
	}
	if depth == 2 {
		var c int64
		for _, w := range cand {
			c += int64(graph.IntersectCount(o.NPlus(w), cand))
		}
		return c
	}
	var c int64
	for _, w := range cand {
		scratch[level] = graph.Intersect(cand, o.NPlus(w), scratch[level][:0])
		c += kcliqueRec(o, scratch[level], depth-1, scratch, level+1)
	}
	return c
}

// PGKClique estimates the k-clique count (k >= 3) with the ProbGraph
// generalization of Listing 2: candidate lists are enumerated exactly
// down to the last level, where the dominant closing cardinality
// |N+_w ∩ C| is estimated on the cumulative bitwise AND of the Bloom
// filters along the clique prefix — the same estimator composition that
// the 4-clique reformulation exposes, extended to arbitrary pattern
// order (cf. the higher-order clique counting discussion of §X).
// pg must be a BF ProbGraph over the oriented neighborhoods.
func PGKClique(o *graph.Oriented, pg *core.PG, k, workers int) (float64, error) {
	return PGKCliqueCtx(context.Background(), o, pg, k, workers)
}

// PGKCliqueCtx is PGKClique with cooperative cancellation.
func PGKCliqueCtx(ctx context.Context, o *graph.Oriented, pg *core.PG, k, workers int) (float64, error) {
	if pg == nil {
		return 0, fmt.Errorf("mining: PGKClique needs a ProbGraph (core.BuildOriented over the same orientation)")
	}
	if pg.Cfg.Kind != core.BF {
		return 0, fmt.Errorf("mining: PGKClique requires a Bloom-filter ProbGraph, got %v", pg.Cfg.Kind)
	}
	if k < 3 {
		return 0, fmt.Errorf("mining: PGKClique needs k >= 3, got %d", k)
	}
	n := o.NumVertices()
	words := pg.Cfg.BloomBits / bitset.WordBits
	total, err := par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		scratch := make([][]uint32, k)
		// acc[level] is the AND of the Bloom filters along the prefix.
		acc := make([]bitset.Bits, k)
		for i := range acc {
			acc[i] = make(bitset.Bits, words)
		}
		var bufs batchBufs
		var s float64
		for v := lo; v < hi; v++ {
			nv := o.NPlus(uint32(v))
			if len(nv) == 0 {
				continue
			}
			copy(acc[0], pg.BloomRow(uint32(v)))
			s += pgKCliqueRec(o, pg, nv, k-1, scratch, acc, 1, &bufs)
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// pgKCliqueRec extends the clique prefix: cand holds the exact common
// out-neighborhood, acc[level-1] the AND of the prefix's Bloom filters.
func pgKCliqueRec(o *graph.Oriented, pg *core.PG, cand []uint32, depth int, scratch [][]uint32, acc []bitset.Bits, level int, bufs *batchBufs) float64 {
	if depth == 1 {
		return float64(len(cand))
	}
	prev := acc[level-1]
	if depth == 2 {
		// Closing level: the accumulated prefix AND streams over the
		// whole candidate window in one batched pass.
		cnt, _ := bufs.size(len(cand))
		return pg.AndCardSum(prev, cand, cnt)
	}
	var s float64
	for _, w := range cand {
		scratch[level] = graph.Intersect(cand, o.NPlus(w), scratch[level][:0])
		if len(scratch[level]) == 0 {
			continue
		}
		bitset.And(acc[level], prev, pg.BloomRow(w))
		s += pgKCliqueRec(o, pg, scratch[level], depth-1, scratch, acc, level+1, bufs)
	}
	return s
}
