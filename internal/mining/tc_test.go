package mining

import (
	"math"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/stats"
)

func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }
func choose4(n int64) int64 { return n * (n - 1) * (n - 2) * (n - 3) / 24 }

func TestExactTCClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K10", graph.Complete(10), choose3(10)},
		{"K3", graph.Complete(3), 1},
		{"C8 triangle-free", graph.Cycle(8), 0},
		{"C3 is a triangle", graph.Cycle(3), 1},
		{"path", graph.Path(10), 0},
		{"star", graph.Star(10), 0},
		{"grid", graph.Grid(4, 5), 0},
		{"empty", mustEmpty(t), 0},
	}
	for _, c := range cases {
		o := c.g.Orient(2)
		if got := ExactTC(o, 2); got != c.want {
			t.Errorf("%s: TC = %d, want %d", c.name, got, c.want)
		}
	}
}

func mustEmpty(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExactTCWorkerInvariance(t *testing.T) {
	g := graph.Kronecker(9, 10, 1)
	o := g.Orient(0)
	want := ExactTC(o, 1)
	for _, w := range []int{2, 4, 8} {
		if got := ExactTC(o, w); got != want {
			t.Fatalf("workers=%d: TC=%d, want %d", w, got, want)
		}
	}
}

func TestPGTCAccuracy(t *testing.T) {
	g := graph.Kronecker(10, 12, 2)
	exact := float64(ExactTC(g.Orient(0), 0))
	if exact == 0 {
		t.Fatal("test graph has no triangles")
	}
	for _, kind := range []core.Kind{core.BF, core.KHash, core.OneHash} {
		pg, err := core.Build(g, core.Config{Kind: kind, Budget: 0.33, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		est := PGTC(g, pg, 0)
		if err := stats.RelativeError(est, exact); err > 0.5 {
			t.Errorf("%v: PGTC = %.0f, exact = %.0f (rel err %.3f)", kind, est, exact, err)
		}
	}
	// KMV (the §IX extension) needs a larger k for the same accuracy: the
	// (k-1)/max union estimator's clamped errors bias the TC sum upward
	// at tiny k. Verify it converges at k=64.
	kmv, err := core.Build(g, core.Config{Kind: core.KMV, K: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.RelativeError(PGTC(g, kmv, 0), exact); got > 0.3 {
		t.Errorf("KMV k=64: rel err %.3f", got)
	}
}

func TestKMVTCConvergence(t *testing.T) {
	g := graph.Kronecker(9, 10, 2)
	exact := float64(ExactTC(g.Orient(0), 0))
	var prev float64 = math.Inf(1)
	improved := 0
	for _, k := range []int{8, 32, 128} {
		pg, err := core.Build(g, core.Config{Kind: core.KMV, K: k, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		e := stats.RelativeError(PGTC(g, pg, 0), exact)
		if e < prev {
			improved++
		}
		prev = e
	}
	if improved < 2 {
		t.Fatalf("KMV TC error did not shrink with k (improved %d/3 steps)", improved)
	}
}

func TestPGTCExactWhenLossless(t *testing.T) {
	// 1-Hash with k >= max degree is lossless, so the TC estimator must
	// return the exact count.
	g := graph.Complete(12)
	pg, err := core.Build(g, core.Config{Kind: core.OneHash, K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(ExactTC(g.Orient(0), 0))
	if est := PGTC(g, pg, 0); math.Abs(est-exact) > 1e-6 {
		t.Fatalf("lossless PGTC = %v, want %v", est, exact)
	}
}

func TestRoundCount(t *testing.T) {
	if RoundCount(-3.2) != 0 || RoundCount(2.5) != 3 || RoundCount(2.4) != 2 {
		t.Fatal("RoundCount")
	}
}

func TestLocalClusteringCoefficient(t *testing.T) {
	// K_n has LCC exactly 1; trees have 0.
	if got := LocalClusteringCoefficient(graph.Complete(8), 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("LCC(K8) = %v", got)
	}
	if got := LocalClusteringCoefficient(graph.Star(10), 2); got != 0 {
		t.Fatalf("LCC(star) = %v", got)
	}
	if LocalClusteringCoefficient(mustEmpty(t), 2) != 0 {
		t.Fatal("LCC(empty)")
	}
}

func TestPGLocalClusteringCoefficient(t *testing.T) {
	g := graph.Complete(20)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.33, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := PGLocalClusteringCoefficient(g, pg, 2)
	if stats.RelativeError(got, 1) > 0.25 {
		t.Fatalf("PG LCC(K20) = %v, want ~1", got)
	}
}

func TestCohesion(t *testing.T) {
	g := graph.Complete(10)
	if got := Cohesion(g, g.Orient(0), 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cohesion(K10) = %v, want 1", got)
	}
	if Cohesion(mustEmpty(t), mustEmpty(t).Orient(0), 2) != 0 {
		t.Fatal("cohesion(empty)")
	}
}

func TestExact4CliqueClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K5", graph.Complete(5), choose4(5)},
		{"K8", graph.Complete(8), choose4(8)},
		{"K4", graph.Complete(4), 1},
		{"K3 too small", graph.Complete(3), 0},
		{"cycle", graph.Cycle(10), 0},
		{"grid", graph.Grid(5, 5), 0},
	}
	for _, c := range cases {
		o := c.g.Orient(2)
		if got := Exact4Clique(o, 2); got != c.want {
			t.Errorf("%s: C4 = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactKCliqueMatches(t *testing.T) {
	g := graph.Kronecker(8, 12, 9)
	o := g.Orient(0)
	if got, want := ExactKClique(o, 3, 2), ExactTC(o, 2); got != want {
		t.Fatalf("3-clique = %d, TC = %d", got, want)
	}
	if got, want := ExactKClique(o, 4, 2), Exact4Clique(o, 2); got != want {
		t.Fatalf("4-clique generic = %d, specialized = %d", got, want)
	}
	// K6: C(6,5) = 6 five-cliques.
	k6 := graph.Complete(6).Orient(0)
	if got := ExactKClique(k6, 5, 2); got != 6 {
		t.Fatalf("5-cliques in K6 = %d, want 6", got)
	}
	if ExactKClique(o, 2, 2) != 0 {
		t.Fatal("k<3 returns 0")
	}
}

func TestPG4CliqueAccuracy(t *testing.T) {
	g := graph.Kronecker(9, 14, 4)
	o := g.Orient(0)
	exact := float64(Exact4Clique(o, 0))
	if exact == 0 {
		t.Fatal("test graph has no 4-cliques")
	}
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.33, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	est := PG4Clique(o, pg, 0)
	if err := stats.RelativeError(est, exact); err > 0.6 {
		t.Fatalf("PG4Clique = %.0f, exact = %.0f (rel err %.3f)", est, exact, err)
	}
}

func TestLocalTCClosedForms(t *testing.T) {
	// K5: every vertex is in C(4,2) = 6 triangles.
	g := graph.Complete(5)
	for v, c := range LocalTC(g, 0) {
		if c != 6 {
			t.Fatalf("K5 localTC[%d] = %d, want 6", v, c)
		}
	}
	// Sum of local counts = 3·TC.
	k := graph.Kronecker(8, 10, 3)
	var sum int64
	for _, c := range LocalTC(k, 0) {
		sum += c
	}
	if want := 3 * ExactTC(k.Orient(0), 0); sum != want {
		t.Fatalf("Σ local = %d, want 3·TC = %d", sum, want)
	}
	// Triangle-free graphs are all zero.
	for _, c := range LocalTC(graph.Grid(4, 4), 0) {
		if c != 0 {
			t.Fatal("grid must have zero local counts")
		}
	}
}

func TestPGLocalTCTracksExact(t *testing.T) {
	g := graph.CommunityGraph(600, 20000, 40, 120, 5)
	pg, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.33, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact := LocalTC(g, 0)
	approx := PGLocalTC(g, pg, 0)
	// Aggregate tracking: total within 25%, and the top-decile vertices
	// by exact count should mostly be top-decile by estimate (the spam
	// detection use case needs the ranking, not the exact numbers).
	var se, sa float64
	for v := range exact {
		se += float64(exact[v])
		sa += approx[v]
	}
	if stats.RelativeError(sa, se) > 0.25 {
		t.Fatalf("total local TC est %v vs exact %v", sa, se)
	}
}
