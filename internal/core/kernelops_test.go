package core

import (
	"math"
	"math/rand"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/kernels"
	"probgraph/internal/sketch"
)

// scalarIntCardBF recomputes the pre-kernel BF path exactly as shipped
// before the LUT: sketch estimator formulas over bitset AND counts.
func scalarIntCardBF(pg *PG, u, v uint32) float64 {
	a, b := pg.BloomRow(u), pg.BloomRow(v)
	switch pg.Cfg.Est {
	case EstBFL:
		return sketch.InterL(a, b, pg.Cfg.NumHashes)
	case EstBFOr:
		return sketch.InterOR(a, b, pg.Cfg.BloomBits, pg.Cfg.NumHashes, pg.SetSize(u), pg.SetSize(v))
	default:
		return sketch.InterAND(a, b, pg.Cfg.BloomBits, pg.Cfg.NumHashes)
	}
}

// TestLUTBitIdentity pins the lookup-table IntCard/IntCard3 against the
// original sketch-package formulas: math.Float64bits equality on every
// pair, for every BF estimator.
func TestLUTBitIdentity(t *testing.T) {
	g := graph.Kronecker(8, 8, 42)
	for _, est := range []Estimator{EstAuto, EstBFAnd, EstBFL, EstBFOr} {
		pg := buildOrFail(t, g, Config{Kind: BF, Est: est, Seed: 7})
		if est != EstBFOr && (pg.lut == nil || pg.lutL == nil) {
			t.Fatalf("est=%v: LUT not built for BloomBits=%d", est, pg.Cfg.BloomBits)
		}
		rng := rand.New(rand.NewSource(1))
		n := uint32(g.NumVertices())
		for trial := 0; trial < 2000; trial++ {
			u, v := rng.Uint32()%n, rng.Uint32()%n
			got, want := pg.IntCard(u, v), scalarIntCardBF(pg, u, v)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("est=%v IntCard(%d,%d): got %v want %v", est, u, v, got, want)
			}
			w := rng.Uint32() % n
			got3 := pg.IntCard3(w, u, v)
			want3 := sketch.InterAND3(pg.BloomRow(w), pg.BloomRow(u), pg.BloomRow(v), pg.Cfg.BloomBits, pg.Cfg.NumHashes)
			if math.Float64bits(got3) != math.Float64bits(want3) {
				t.Fatalf("est=%v IntCard3(%d,%d,%d): got %v want %v", est, w, u, v, got3, want3)
			}
		}
	}
}

// TestIntCardManyBitIdentity pins the batched kernels against scalar
// IntCard/IntCard3 for every kind and estimator, including candidate
// windows spanning tile boundaries.
func TestIntCardManyBitIdentity(t *testing.T) {
	g := graph.Kronecker(8, 8, 43)
	n := uint32(g.NumVertices())
	cfgs := []Config{
		{Kind: BF},
		{Kind: BF, Est: EstBFL},
		{Kind: BF, Est: EstBFOr},
		{Kind: KHash},
		{Kind: OneHash},
		{Kind: KMV},
		{Kind: HLL},
	}
	for _, cfg := range cfgs {
		cfg.Seed = 11
		pg := buildOrFail(t, g, cfg)
		rng := rand.New(rand.NewSource(2))
		for _, nc := range []int{0, 1, 63, 64, 65, 200} {
			cands := make([]uint32, nc)
			for i := range cands {
				cands[i] = rng.Uint32() % n
			}
			cnt := make([]int32, nc)
			out := make([]float64, nc)
			u, v := rng.Uint32()%n, rng.Uint32()%n

			pg.IntCardMany(u, cands, cnt, out)
			for i, c := range cands {
				want := pg.IntCard(u, c)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("%v/%v IntCardMany[%d]: got %v want %v", cfg.Kind, cfg.Est, i, out[i], want)
				}
			}

			tmp := make([]uint64, pg.RowWords())
			pg.IntCard3Many(u, v, cands, tmp, cnt, out)
			for i, w := range cands {
				want := pg.IntCard3(w, u, v)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("%v/%v IntCard3Many[%d]: got %v want %v", cfg.Kind, cfg.Est, i, out[i], want)
				}
			}

			// The fused Sum forms must reproduce the ordered scalar
			// accumulation exactly.
			var want float64
			for _, c := range cands {
				want += pg.IntCard(u, c)
			}
			if got := pg.IntCardSum(u, cands, cnt); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v/%v IntCardSum: got %v want %v", cfg.Kind, cfg.Est, got, want)
			}
			want = 0
			for _, w := range cands {
				want += pg.IntCard3(w, u, v)
			}
			if got := pg.IntCard3Sum(u, v, cands, tmp, cnt); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v/%v IntCard3Sum: got %v want %v", cfg.Kind, cfg.Est, got, want)
			}
		}
	}
}

// TestAndCardManyBitIdentity pins the accumulator kernel against the
// scalar AndCount+Swamidass composition the clique recursion used.
func TestAndCardManyBitIdentity(t *testing.T) {
	g := graph.Kronecker(8, 8, 44)
	n := uint32(g.NumVertices())
	pg := buildOrFail(t, g, Config{Kind: BF, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	acc := make([]uint64, pg.RowWords())
	kernels.And(acc, pg.BloomRow(rng.Uint32()%n), pg.BloomRow(rng.Uint32()%n))
	cands := make([]uint32, 150)
	for i := range cands {
		cands[i] = rng.Uint32() % n
	}
	cnt := make([]int32, len(cands))
	out := make([]float64, len(cands))
	pg.AndCardMany(acc, cands, cnt, out)
	var wantSum float64
	for i, v := range cands {
		ones := kernels.AndCount(acc, pg.BloomRow(v))
		want := sketch.CardSwamidass(ones, pg.Cfg.BloomBits, pg.Cfg.NumHashes)
		wantSum += want
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("AndCardMany[%d]: got %v want %v", i, out[i], want)
		}
	}
	if got := pg.AndCardSum(acc, cands, cnt); math.Float64bits(got) != math.Float64bits(wantSum) {
		t.Fatalf("AndCardSum: got %v want %v", got, wantSum)
	}
}

// TestAbsentAtManyBitIdentity pins the batched prober against AbsentAt
// for b=2 (specialized) and b=3 (generic) hash counts.
func TestAbsentAtManyBitIdentity(t *testing.T) {
	g := graph.Kronecker(8, 8, 45)
	n := uint32(g.NumVertices())
	for _, b := range []int{2, 3} {
		pg := buildOrFail(t, g, Config{Kind: BF, NumHashes: b, Seed: 5})
		p := pg.Prober()
		if p == nil {
			t.Fatal("nil prober for BF")
		}
		rng := rand.New(rand.NewSource(4))
		buf := make([]ProbePos, p.B())
		vs := make([]uint32, 130)
		for i := range vs {
			vs[i] = rng.Uint32() % n
		}
		absent := make([]bool, len(vs))
		for trial := 0; trial < 50; trial++ {
			sig := p.SigInto(rng.Uint32()%n, buf)
			p.AbsentAtMany(sig, vs, absent)
			for i, v := range vs {
				if absent[i] != p.AbsentAt(sig, v) {
					t.Fatalf("b=%d AbsentAtMany[%d] disagrees with AbsentAt", b, i)
				}
			}
		}
	}
}

// TestBuildArena pins that arena-backed builds produce PGs identical to
// heap builds for every kind, and that the arena actually carried the
// storage.
func TestBuildArena(t *testing.T) {
	g := graph.Kronecker(7, 8, 46)
	for _, kind := range []Kind{BF, KHash, OneHash, KMV, HLL} {
		cfg := Config{Kind: kind, Seed: 9, StoreElems: kind == OneHash}
		heap := buildOrFail(t, g, cfg)
		var ar kernels.Arena
		pg, err := BuildArena(g, cfg, &ar)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Bytes() == 0 {
			t.Fatalf("%v: arena unused", kind)
		}
		hr, ar2 := heap.Raw(), pg.Raw()
		if len(hr.Bits) != len(ar2.Bits) || len(hr.Sigs) != len(ar2.Sigs) || len(hr.Hashes) != len(ar2.Hashes) {
			t.Fatalf("%v: geometry mismatch", kind)
		}
		for i := range hr.Bits {
			if hr.Bits[i] != ar2.Bits[i] {
				t.Fatalf("%v: bits diverge at %d", kind, i)
			}
		}
		for i := range hr.Hashes {
			if hr.Hashes[i] != ar2.Hashes[i] {
				t.Fatalf("%v: hashes diverge at %d", kind, i)
			}
		}
		rng := rand.New(rand.NewSource(6))
		nv := uint32(g.NumVertices())
		for trial := 0; trial < 500; trial++ {
			u, v := rng.Uint32()%nv, rng.Uint32()%nv
			a, b := heap.IntCard(u, v), pg.IntCard(u, v)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%v: IntCard(%d,%d) %v vs %v", kind, u, v, a, b)
			}
		}
	}
}

// TestFromRawHasLUT guards the decode path: a PG reconstituted from its
// raw view must keep the LUT fast path (and its bit-identity).
func TestFromRawHasLUT(t *testing.T) {
	g := graph.Kronecker(7, 8, 47)
	pg := buildOrFail(t, g, Config{Kind: BF, Seed: 13})
	dec, err := FromRaw(pg.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if dec.lut == nil {
		t.Fatal("FromRaw did not rebuild the estimator LUT")
	}
	if math.Float64bits(dec.IntCard(1, 2)) != math.Float64bits(pg.IntCard(1, 2)) {
		t.Fatal("decoded PG IntCard diverges")
	}
}
