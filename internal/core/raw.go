package core

import (
	"errors"
	"fmt"

	"probgraph/internal/bitset"
	"probgraph/internal/hash"
)

// ErrBorrowed is returned by every mutation entry point of a PG adopted
// with FromRawBorrowed: its arrays alias a read-only mapping, so an
// in-place write would fault (PROT_READ) or, worse, corrupt a file
// shared by every process serving it. Callers that need to mutate must
// Clone first — the clone owns fresh heap copies.
var ErrBorrowed = errors.New("core: PG borrows a read-only mapping and cannot be mutated (Clone it first)")

// This file is the serialization bridge of a PG: an exported flat-array
// view (Raw) and its validated inverse (FromRaw). The binary artifact
// codec (internal/pgio) moves these arrays to and from disk byte for
// byte, so a decoded PG is bit-identical to the one that was encoded —
// the hash family is the only non-array state, and it is a pure function
// of (Seed, Kind, NumHashes, K), so FromRaw re-derives it without ever
// re-hashing a neighborhood.

// Raw is the complete flat-array state of a PG. Slices alias the PG's
// storage — treat a Raw obtained from PG.Raw as read-only, and do not
// mutate slices handed to FromRaw afterwards (FromRaw adopts them).
type Raw struct {
	Cfg     Config
	N       int
	CSRBits int64
	Sizes   []int32 // exact |set| per vertex

	// BF storage: N rows of Cfg.BloomBits/64 words.
	Bits []uint64
	// k-Hash storage: N rows of Cfg.K signature slots.
	Sigs []uint64
	// 1-Hash / KMV storage: N rows of up to Cfg.K sorted hashes, Lens
	// holding each row's used prefix, Elems aligned when StoreElems.
	Hashes []uint64
	Lens   []int32
	Elems  []uint32
	// HLL storage: N rows of 2^HLLP single-byte registers.
	HLLReg []uint8
	HLLP   uint8
}

// Borrowed reports whether the PG's arrays alias a read-only mapping
// (FromRawBorrowed) — i.e. whether mutation would return ErrBorrowed.
func (pg *PG) Borrowed() bool { return pg.borrowed }

// Raw returns the PG's flat-array view. The slices alias the PG's
// storage; callers must not mutate them.
func (pg *PG) Raw() Raw {
	return Raw{
		Cfg:     pg.Cfg,
		N:       pg.n,
		CSRBits: pg.csrBits,
		Sizes:   pg.sizes,
		Bits:    pg.bits,
		Sigs:    pg.sigs,
		Hashes:  pg.hashes,
		Lens:    pg.lens,
		Elems:   pg.elems,
		HLLReg:  pg.hllReg,
		HLLP:    pg.hllP,
	}
}

// FromRaw reconstitutes a PG from its flat-array view: the geometry is
// validated against the configuration, the hash family is re-derived
// from (Seed, Kind, NumHashes, K), and the arrays are adopted as-is —
// no neighborhood is ever re-sketched, which is what makes decoding an
// artifact a memory-bandwidth operation instead of a build.
func FromRaw(r Raw) (*PG, error) {
	return fromRaw(r, false)
}

// FromRawBorrowed is FromRaw for arrays that alias a read-only memory
// mapping (the zero-copy decode path). The resulting PG answers every
// query normally — the BF estimator LUTs are derived state, rebuilt on
// the heap, never read from the mapping — but its mutation surface
// (Grow, AddNeighbor, ResketchRow) returns ErrBorrowed, and Clone
// produces an ordinary mutable PG by deep-copying out of the mapping.
func FromRawBorrowed(r Raw) (*PG, error) {
	return fromRaw(r, true)
}

func fromRaw(r Raw, borrowed bool) (*PG, error) {
	cfg := r.Cfg
	switch cfg.Kind {
	case BF, KHash, OneHash, KMV, HLL:
	default:
		return nil, fmt.Errorf("core: raw PG has unknown representation kind %d", int(cfg.Kind))
	}
	if r.N < 0 {
		return nil, fmt.Errorf("core: raw PG has negative vertex count %d", r.N)
	}
	if len(r.Sizes) != r.N {
		return nil, fmt.Errorf("core: raw PG sizes array covers %d vertices, want %d", len(r.Sizes), r.N)
	}
	pg := &PG{
		Cfg:      cfg,
		n:        r.N,
		csrBits:  r.CSRBits,
		sizes:    r.Sizes,
		hllP:     r.HLLP,
		borrowed: borrowed,
	}
	// Per-kind geometry checks mirror what build allocates; a mismatch
	// means the raw view (e.g. a decoded artifact section) drifted from
	// its recorded configuration.
	switch cfg.Kind {
	case BF:
		if cfg.BloomBits <= 0 || cfg.BloomBits%bitset.WordBits != 0 {
			if r.N > 0 {
				return nil, fmt.Errorf("core: raw BF PG has invalid filter size %d bits", cfg.BloomBits)
			}
		}
		if cfg.NumHashes <= 0 {
			return nil, fmt.Errorf("core: raw BF PG has invalid hash count %d", cfg.NumHashes)
		}
		pg.words = cfg.BloomBits / bitset.WordBits
		if len(r.Bits) != r.N*pg.words {
			return nil, fmt.Errorf("core: raw BF PG has %d filter words, want %d", len(r.Bits), r.N*pg.words)
		}
		pg.bits = r.Bits
		pg.fam = hash.NewFamily(cfg.Seed, cfg.NumHashes)
	case KHash:
		if cfg.K < 1 && r.N > 0 {
			return nil, fmt.Errorf("core: raw kH PG has invalid signature size k=%d", cfg.K)
		}
		if len(r.Sigs) != r.N*cfg.K {
			return nil, fmt.Errorf("core: raw kH PG has %d signature slots, want %d", len(r.Sigs), r.N*cfg.K)
		}
		pg.sigs = r.Sigs
		pg.fam = hash.NewFamily(cfg.Seed, cfg.K)
	case OneHash, KMV:
		if cfg.K < 1 && r.N > 0 {
			return nil, fmt.Errorf("core: raw %v PG has invalid sketch size k=%d", cfg.Kind, cfg.K)
		}
		if len(r.Hashes) != r.N*cfg.K {
			return nil, fmt.Errorf("core: raw %v PG has %d hash slots, want %d", cfg.Kind, len(r.Hashes), r.N*cfg.K)
		}
		if len(r.Lens) != r.N {
			return nil, fmt.Errorf("core: raw %v PG lens array covers %d vertices, want %d", cfg.Kind, len(r.Lens), r.N)
		}
		for v, l := range r.Lens {
			if l < 0 || int(l) > cfg.K {
				return nil, fmt.Errorf("core: raw %v PG row %d has prefix length %d outside [0,%d]", cfg.Kind, v, l, cfg.K)
			}
		}
		wantElems := 0
		if cfg.StoreElems && cfg.Kind == OneHash {
			wantElems = r.N * cfg.K
		}
		if len(r.Elems) != wantElems {
			return nil, fmt.Errorf("core: raw %v PG has %d element slots, want %d", cfg.Kind, len(r.Elems), wantElems)
		}
		pg.hashes = r.Hashes
		pg.lens = r.Lens
		if wantElems > 0 {
			pg.elems = r.Elems
		}
		pg.fam = hash.NewFamily(cfg.Seed, 1)
	case HLL:
		if (r.HLLP < 4 || r.HLLP > 16) && r.N > 0 {
			return nil, fmt.Errorf("core: raw HLL PG has precision p=%d outside [4,16]", r.HLLP)
		}
		m := 0
		if r.N > 0 {
			m = 1 << r.HLLP
		}
		if len(r.HLLReg) != r.N*m {
			return nil, fmt.Errorf("core: raw HLL PG has %d registers, want %d", len(r.HLLReg), r.N*m)
		}
		pg.hllReg = r.HLLReg
		pg.fam = hash.NewFamily(cfg.Seed, 1)
	}
	pg.initBFLUT()
	return pg, nil
}
