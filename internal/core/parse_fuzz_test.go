package core

import (
	"strings"
	"testing"
)

// The Parse* functions are the flag/wire decoding layer of the artifact
// and serving stack, so their contract with String is pinned by fuzzing:
// every name String prints must parse back to the same value, and any
// string that parses at all must normalize to a canonical name that
// parses to the same value again (parse∘String is the identity on the
// image of parse).

func FuzzParseKindRoundTrip(f *testing.F) {
	for _, k := range []Kind{BF, KHash, OneHash, KMV, HLL} {
		f.Add(k.String())
	}
	f.Add("bloom")
	f.Add("khash")
	f.Add(" Kmv ")
	f.Add("nonsense")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err != nil {
			return // unparseable input: only the error path is exercised
		}
		k2, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q) = %v, but its String %q does not parse: %v", s, k, k.String(), err)
		}
		if k2 != k {
			t.Fatalf("ParseKind(%q) = %v, round-trips to %v", s, k, k2)
		}
		// Parsing is case- and whitespace-insensitive by contract.
		if k3, err := ParseKind(strings.ToUpper("  " + s + " ")); err != nil || k3 != k {
			t.Fatalf("ParseKind is not case/space-insensitive on %q: %v, %v", s, k3, err)
		}
	})
}

func FuzzParseEstimatorRoundTrip(f *testing.F) {
	for _, e := range []Estimator{EstAuto, EstBFAnd, EstBFL, EstBFOr, Est1HSimple} {
		f.Add(e.String())
	}
	f.Add("")
	f.Add("swamidass")
	f.Add(" Linear ")
	f.Add("nonsense")
	f.Fuzz(func(t *testing.T, s string) {
		e, err := ParseEstimator(s)
		if err != nil {
			return
		}
		e2, err := ParseEstimator(e.String())
		if err != nil {
			t.Fatalf("ParseEstimator(%q) = %v, but its String %q does not parse: %v", s, e, e.String(), err)
		}
		if e2 != e {
			t.Fatalf("ParseEstimator(%q) = %v, round-trips to %v", s, e, e2)
		}
		if e3, err := ParseEstimator(strings.ToUpper("  " + s + " ")); err != nil || e3 != e {
			t.Fatalf("ParseEstimator is not case/space-insensitive on %q: %v, %v", s, e3, err)
		}
	})
}
