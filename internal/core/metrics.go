package core

import "probgraph/internal/obs"

// RegisterMemoryGauges exposes this PG's resident footprint on an
// obs.Registry: sketch bytes, covered vertices, and the
// relative-memory ratio against the CSR baseline the paper reports.
// The gauges are func-backed, so a PG that grows or is re-sketched in
// place (the streaming layer's maintained sketches) reads current at
// every scrape. Callers distinguish multiple PGs by labels, typically
// obs.L("kind", ...).
func (pg *PG) RegisterMemoryGauges(r *obs.Registry, labels ...obs.Label) {
	r.GaugeFunc("probgraph_core_sketch_bytes",
		"Resident bytes of one maintained sketch set.",
		func() float64 { return float64(pg.MemoryBytes()) }, labels...)
	r.GaugeFunc("probgraph_core_sketch_vertices",
		"Vertices covered by one maintained sketch set.",
		func() float64 { return float64(pg.NumVertices()) }, labels...)
	r.GaugeFunc("probgraph_core_relative_memory",
		"Sketch memory relative to the exact CSR adjacency.",
		func() float64 { return pg.RelativeMemory() }, labels...)
}
