package core

import (
	"probgraph/internal/kernels"
	"probgraph/internal/sketch"
)

// This file is the batched face of the PG: multi-candidate variants of
// IntCard/IntCard3 and the Prober that route through internal/kernels'
// tiled row kernels (docs/KERNELS.md). Every batched call is
// bit-identical to the scalar loop it replaces — same popcounts, same
// estimator arithmetic via the precomputed lookup tables, same output
// order — so consumers can switch freely between the two forms.

// maxLUTEntries bounds the estimator tables: a row of more than ~64K
// bits (8 KiB per vertex) is outside every evaluated configuration, and
// there the per-call math.Log is noise anyway.
const maxLUTEntries = 1 << 16

// initBFLUT tabulates the BF estimators over every possible AND
// popcount [0, BloomBits]. Called once from build and FromRaw; the
// tables are pure functions of the immutable geometry, so Clone/Grow
// share them untouched.
func (pg *PG) initBFLUT() {
	if pg.Cfg.Kind != BF {
		return
	}
	bbits := pg.Cfg.BloomBits
	if bbits <= 0 || bbits+1 > maxLUTEntries || pg.Cfg.NumHashes <= 0 {
		return
	}
	lut := make([]float64, bbits+1)
	lutL := make([]float64, bbits+1)
	for ones := range lut {
		lut[ones] = sketch.CardSwamidass(ones, bbits, pg.Cfg.NumHashes)
		lutL[ones] = sketch.CardLinear(ones, pg.Cfg.NumHashes)
	}
	pg.lut, pg.lutL = lut, lutL
}

// RowWords returns the number of uint64 words per BF row (0 for other
// kinds) — the scratch-row size IntCard3Many callers allocate.
func (pg *PG) RowWords() int { return pg.words }

// IntCardMany is the batched IntCard: out[i] = IntCard(u, cands[i]) for
// every candidate, bit-identical to the scalar loop. For BF with the
// AND/L estimators it keeps u's row resident and streams candidate rows
// through kernels.AndCountMany in cache-blocked tiles, mapping counts
// through the estimator tables; every other configuration falls back to
// per-candidate IntCard, so callers need no kind dispatch.
//
// cnt is caller scratch with len >= len(cands) (may be nil for the
// fallback kinds); out must have len >= len(cands).
func (pg *PG) IntCardMany(u uint32, cands []uint32, cnt []int32, out []float64) {
	if pg.Cfg.Kind == BF && pg.Cfg.Est != EstBFOr && pg.lut != nil {
		src := pg.bits[int(u)*pg.words : int(u)*pg.words+pg.words]
		kernels.AndCountMany(src, pg.bits, pg.words, cands, cnt)
		lut := pg.lut
		if pg.Cfg.Est == EstBFL {
			lut = pg.lutL
		}
		for i := range cands {
			out[i] = lut[cnt[i]]
		}
		return
	}
	for i, v := range cands {
		out[i] = pg.IntCard(u, v)
	}
}

// IntCardSum is IntCardMany fused with the ordered reduction the
// counting kernels perform: it returns Σ_i IntCard(u, cands[i]) with
// the additions in candidate order, so the sum is bit-identical to
// accumulating the scalar calls — without materializing the per-pair
// estimates. cnt is caller scratch with len >= len(cands) (nil ok for
// the fallback kinds).
func (pg *PG) IntCardSum(u uint32, cands []uint32, cnt []int32) float64 {
	if pg.Cfg.Kind == BF && pg.Cfg.Est != EstBFOr && pg.lut != nil {
		src := pg.bits[int(u)*pg.words : int(u)*pg.words+pg.words]
		kernels.AndCountMany(src, pg.bits, pg.words, cands, cnt)
		lut := pg.lut
		if pg.Cfg.Est == EstBFL {
			lut = pg.lutL
		}
		var s float64
		for _, c := range cnt[:len(cands)] {
			s += lut[c]
		}
		return s
	}
	var s float64
	for _, v := range cands {
		s += pg.IntCard(u, v)
	}
	return s
}

// IntCard3Many is the batched IntCard3 with the pair fixed: out[i] =
// IntCard3(ws[i], u, v). For BF the pair row B_u AND B_v is
// materialized once into tmp (caller scratch, len >= RowWords()) and
// the triple reduces to a batched pairwise AND-count — identical bits,
// identical estimate, one pass per tile instead of three row loads per
// candidate. Other kinds fall back to per-candidate IntCard3.
//
// cnt is caller scratch with len >= len(ws) (nil ok for fallback
// kinds); out must have len >= len(ws).
func (pg *PG) IntCard3Many(u, v uint32, ws []uint32, tmp []uint64, cnt []int32, out []float64) {
	if pg.Cfg.Kind == BF && pg.lut != nil {
		kernels.And(tmp[:pg.words], pg.bits[int(u)*pg.words:int(u+1)*pg.words], pg.bits[int(v)*pg.words:])
		kernels.AndCountMany(tmp[:pg.words], pg.bits, pg.words, ws, cnt)
		for i := range ws {
			out[i] = pg.lut[cnt[i]]
		}
		return
	}
	for i, w := range ws {
		out[i] = pg.IntCard3(w, u, v)
	}
}

// IntCard3Sum is IntCard3Many fused with the ordered reduction:
// Σ_i IntCard3(ws[i], u, v), additions in candidate order.
func (pg *PG) IntCard3Sum(u, v uint32, ws []uint32, tmp []uint64, cnt []int32) float64 {
	if pg.Cfg.Kind == BF && pg.lut != nil {
		kernels.And(tmp[:pg.words], pg.bits[int(u)*pg.words:int(u+1)*pg.words], pg.bits[int(v)*pg.words:])
		kernels.AndCountMany(tmp[:pg.words], pg.bits, pg.words, ws, cnt)
		var s float64
		for _, c := range cnt[:len(ws)] {
			s += pg.lut[c]
		}
		return s
	}
	var s float64
	for _, w := range ws {
		s += pg.IntCard3(w, u, v)
	}
	return s
}

// AndCardSum is AndCardMany fused with the ordered reduction:
// Σ_i Swamidass(popcount(acc AND row(cands[i]))), additions in
// candidate order. BF only.
func (pg *PG) AndCardSum(acc []uint64, cands []uint32, cnt []int32) float64 {
	if pg.lut != nil {
		kernels.AndCountMany(acc[:pg.words], pg.bits, pg.words, cands, cnt)
		var s float64
		for _, c := range cnt[:len(cands)] {
			s += pg.lut[c]
		}
		return s
	}
	var s float64
	for _, v := range cands {
		ones := kernels.AndCount(acc[:pg.words], pg.bits[int(v)*pg.words:])
		s += sketch.CardSwamidass(ones, pg.Cfg.BloomBits, pg.Cfg.NumHashes)
	}
	return s
}

// AndCardMany is the accumulator form of the batched BF kernel used by
// deep clique recursion: out[i] = Swamidass(popcount(acc AND
// row(cands[i]))) where acc is an already-ANDed prefix row (B_{v1} AND
// ... AND B_{vk}). BF only; len(acc) must be RowWords().
func (pg *PG) AndCardMany(acc []uint64, cands []uint32, cnt []int32, out []float64) {
	if pg.lut != nil {
		kernels.AndCountMany(acc[:pg.words], pg.bits, pg.words, cands, cnt)
		for i := range cands {
			out[i] = pg.lut[cnt[i]]
		}
		return
	}
	for i, v := range cands {
		ones := kernels.AndCount(acc[:pg.words], pg.bits[int(v)*pg.words:])
		out[i] = sketch.CardSwamidass(ones, pg.Cfg.BloomBits, pg.Cfg.NumHashes)
	}
}

// AbsentAtMany is the batched AbsentAt: absent[i] = AbsentAt(sig,
// vs[i]), bit-identical, with the signature's word/mask pairs held in
// registers while candidate rows stream by — the pattern DFS probes one
// hoisted signature against a whole candidate window this way. The
// b==2 case (the evaluation's hash count) is specialized.
func (p *Prober) AbsentAtMany(sig []ProbePos, vs []uint32, absent []bool) {
	if len(sig) == 2 {
		w0, m0 := int(sig[0].Word), sig[0].Mask
		w1, m1 := int(sig[1].Word), sig[1].Mask
		for i, v := range vs {
			base := int(v) * p.words
			absent[i] = p.bits[base+w0]&m0 == 0 || p.bits[base+w1]&m1 == 0
		}
		return
	}
	for i, v := range vs {
		absent[i] = p.AbsentAt(sig, v)
	}
}
