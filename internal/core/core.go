// Package core implements the ProbGraph representation itself (§V, §VI):
// one fixed-size probabilistic sketch per vertex neighborhood, stored in
// flat arrays with a uniform stride, parameterized by the storage budget
// s, built in parallel, and queried through the estimator dispatch
// IntCard. The fixed per-vertex size is a deliberate design point — it is
// what gives ProbGraph its load-balancing advantage over CSR (Fig. 1,
// panel 5): every intersection costs the same regardless of the degrees
// involved.
package core

import (
	"fmt"
	"strings"

	"probgraph/internal/bitset"
	"probgraph/internal/graph"
	"probgraph/internal/hash"
	"probgraph/internal/kernels"
	"probgraph/internal/par"
	"probgraph/internal/sketch"
)

// Kind selects the probabilistic set representation (§II-D, §IX).
type Kind int

const (
	// BF represents neighborhoods as Bloom filters.
	BF Kind = iota
	// KHash represents neighborhoods as k-Hash MinHash signatures.
	KHash
	// OneHash represents neighborhoods as 1-Hash (bottom-k) MinHash sketches.
	OneHash
	// KMV represents neighborhoods as K-Minimum-Values sketches.
	KMV
	// HLL represents neighborhoods as HyperLogLog registers — the §X
	// "beyond Bloom filter and MinHash" extension, with intersections by
	// inclusion–exclusion over the register-max union.
	HLL
)

// String returns the representation name as used in the paper's plots.
func (k Kind) String() string {
	switch k {
	case BF:
		return "BF"
	case KHash:
		return "kH"
	case OneHash:
		return "1H"
	case KMV:
		return "KMV"
	case HLL:
		return "HLL"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a representation name as printed by Kind.String,
// case-insensitively, plus long aliases — the flag/wire form used by
// the cmds and the serving layer.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "bf", "bloom":
		return BF, nil
	case "kh", "khash":
		return KHash, nil
	case "1h", "onehash":
		return OneHash, nil
	case "kmv":
		return KMV, nil
	case "hll":
		return HLL, nil
	}
	return 0, fmt.Errorf("core: unknown sketch kind %q", s)
}

// Estimator selects the |X∩Y| estimator within a representation.
type Estimator int

const (
	// EstAuto picks the paper's default for the representation:
	// AND (Eq. 2) for BF, Eq. 5 for k-Hash, the union-restricted Jaccard
	// for 1-Hash, inclusion–exclusion for KMV.
	EstAuto Estimator = iota
	// EstBFAnd is Eq. (2), |X∩Y|_AND.
	EstBFAnd
	// EstBFL is Eq. (4), the limiting estimator ones(AND)/b.
	EstBFL
	// EstBFOr is Eq. (29), the Swamidass union-based estimator.
	EstBFOr
	// Est1HSimple is the plain |M¹_X∩M¹_Y|/k Jaccard of §IV-D.
	Est1HSimple
)

// String returns the estimator name — the flag/wire form ParseEstimator
// accepts, mirroring Kind.String/ParseKind.
func (e Estimator) String() string {
	switch e {
	case EstAuto:
		return "auto"
	case EstBFAnd:
		return "and"
	case EstBFL:
		return "l"
	case EstBFOr:
		return "or"
	case Est1HSimple:
		return "1hsimple"
	}
	return fmt.Sprintf("Estimator(%d)", int(e))
}

// ParseEstimator parses an estimator name as printed by Estimator.String,
// case-insensitively, plus long aliases — the flag/wire form the cmds
// accept. The empty string parses as EstAuto, so an unset flag or wire
// field selects the paper's per-representation default.
func ParseEstimator(s string) (Estimator, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return EstAuto, nil
	case "and", "bfand":
		return EstBFAnd, nil
	case "l", "bfl", "linear":
		return EstBFL, nil
	case "or", "bfor", "swamidass":
		return EstBFOr, nil
	case "1hsimple", "simple":
		return Est1HSimple, nil
	}
	return 0, fmt.Errorf("core: unknown estimator %q", s)
}

// Config parameterizes Build. The zero value plus a Kind is usable: the
// storage budget defaults to 25% (the evaluation's typical setting) and
// sizes are derived from it.
type Config struct {
	Kind Kind
	Est  Estimator

	// Budget is the storage budget s ∈ (0, 1]: the additional memory
	// allowed for sketches as a fraction of the CSR size (§V-A). Used
	// when BloomBits / K are zero. Defaults to 0.25.
	Budget float64

	// BloomBits fixes the per-vertex Bloom filter size B in bits
	// (rounded up to a multiple of 64). 0 = derive from Budget.
	BloomBits int
	// NumHashes is b, the Bloom hash-function count. Defaults to 2, the
	// evaluation's setting.
	NumHashes int
	// K fixes the MinHash/KMV sketch size. 0 = derive from Budget.
	K int

	// StoreElems makes 1-Hash sketches retain element IDs so weighted
	// similarity measures can be estimated (Adamic–Adar, Resource Alloc.).
	StoreElems bool

	// Seed drives every hash family; identical seeds reproduce sketches.
	Seed uint64
	// Workers bounds construction parallelism (<=0: GOMAXPROCS).
	Workers int
}

// withDefaults fills in derived parameters for a graph with n vertices
// and CSR size csrBits.
func (c Config) withDefaults(n int, csrBits int64) (Config, error) {
	if c.Budget < 0 || c.Budget > 1 {
		return c, fmt.Errorf("core: budget s=%v outside [0,1]", c.Budget)
	}
	if c.Budget == 0 {
		c.Budget = 0.25
	}
	if c.NumHashes <= 0 {
		c.NumHashes = 2
	}
	if n == 0 {
		return c, nil
	}
	budgetBits := int64(c.Budget * float64(csrBits))
	if c.BloomBits == 0 {
		bb := budgetBits / int64(n)
		if bb < bitset.WordBits {
			bb = bitset.WordBits
		}
		c.BloomBits = int(bb)
	}
	c.BloomBits = (c.BloomBits + bitset.WordBits - 1) / bitset.WordBits * bitset.WordBits
	if c.K == 0 {
		slotBits := int64(64)
		if c.StoreElems && c.Kind == OneHash {
			slotBits = 96 // hash value + element ID per slot
		}
		k := budgetBits / (slotBits * int64(n))
		if k < 1 {
			k = 1
		}
		c.K = int(k)
	}
	if c.K < 1 {
		return c, fmt.Errorf("core: k=%d must be positive", c.K)
	}
	return c, nil
}

// PG is a ProbGraph: per-vertex neighborhood sketches with O(1) row
// access. Build one with Build (full neighborhoods N_v, used by TC,
// clustering, similarity) or BuildOriented (oriented N+_v, used by
// clique counting).
type PG struct {
	Cfg     Config
	n       int
	sizes   []int32 // exact |set| per vertex (degrees); free in graph mining
	fam     *hash.Family
	csrBits int64

	// borrowed marks a PG whose arrays alias a read-only mapping
	// (FromRawBorrowed): reads are ordinary, mutation returns
	// ErrBorrowed, Clone clears it by copying onto the heap.
	borrowed bool

	// BF storage: n rows of `words` uint64s.
	words int
	bits  []uint64

	// k-Hash storage: n rows of K signature slots.
	sigs []uint64

	// 1-Hash / KMV storage: n rows of up to K sorted hashes; lens[v] is
	// the used prefix (min(K, d_v) — shorter for low-degree vertices).
	hashes []uint64
	lens   []int32
	elems  []uint32 // aligned with hashes when Cfg.StoreElems

	// HLL storage: n rows of 2^hllP single-byte registers.
	hllReg []uint8
	hllP   uint8

	// BF estimator lookup tables, indexed by popcount(AND): lut holds
	// the Swamidass estimate (Eq. 1), lutL the limiting estimate
	// (Eq. 4). Pure functions of the immutable filter geometry
	// (BloomBits, NumHashes), so they are built once per PG, shared by
	// clones, and keep the hot loops free of math.Log while staying
	// bit-identical to the sketch package's formulas. nil when the
	// geometry is degenerate or too large to tabulate.
	lut  []float64
	lutL []float64
}

// Build constructs the ProbGraph representation of every full
// neighborhood N_v, in parallel (Table V costs).
func Build(g *graph.Graph, cfg Config) (*PG, error) {
	return BuildArena(g, cfg, nil)
}

// BuildOriented constructs sketches of the oriented neighborhoods N+_v.
func BuildOriented(o *graph.Oriented, csrBits int64, cfg Config) (*PG, error) {
	return BuildOrientedArena(o, csrBits, cfg, nil)
}

// BuildArena is Build with an optional arena: when ar is non-nil, every
// storage array of the PG is carved from it, so an epoch's rows are
// physically contiguous (one slab per epoch — the layout the batched
// tile kernels and the future mmap path want). The PG result is
// identical either way; nil falls back to individual heap allocations.
func BuildArena(g *graph.Graph, cfg Config, ar *kernels.Arena) (*PG, error) {
	n := g.NumVertices()
	return build(n, g.SizeBits(), cfg, func(v uint32) []uint32 { return g.Neighbors(v) }, ar)
}

// BuildOrientedArena is BuildOriented with an optional arena; see
// BuildArena.
func BuildOrientedArena(o *graph.Oriented, csrBits int64, cfg Config, ar *kernels.Arena) (*PG, error) {
	n := o.NumVertices()
	return build(n, csrBits, cfg, func(v uint32) []uint32 { return o.NPlus(v) }, ar)
}

func build(n int, csrBits int64, cfg Config, neigh func(uint32) []uint32, ar *kernels.Arena) (*PG, error) {
	cfg, err := cfg.withDefaults(n, csrBits)
	if err != nil {
		return nil, err
	}
	alloc64 := func(n int) []uint64 {
		if ar != nil {
			return ar.Uint64s(n)
		}
		return make([]uint64, n)
	}
	alloc32 := func(n int) []uint32 {
		if ar != nil {
			return ar.Uint32s(n)
		}
		return make([]uint32, n)
	}
	allocI32 := func(n int) []int32 {
		if ar != nil {
			return ar.Int32s(n)
		}
		return make([]int32, n)
	}
	alloc8 := func(n int) []uint8 {
		if ar != nil {
			return ar.Uint8s(n)
		}
		return make([]uint8, n)
	}
	pg := &PG{Cfg: cfg, n: n, csrBits: csrBits}
	pg.sizes = allocI32(n)
	par.For(n, cfg.Workers, func(v int) {
		pg.sizes[v] = int32(len(neigh(uint32(v))))
	})
	switch cfg.Kind {
	case BF:
		pg.fam = hash.NewFamily(cfg.Seed, cfg.NumHashes)
		pg.words = cfg.BloomBits / bitset.WordBits
		pg.bits = alloc64(n * pg.words)
		par.For(n, cfg.Workers, func(v int) {
			row := pg.BloomRow(uint32(v))
			for _, x := range neigh(uint32(v)) {
				sketch.AddToBits(row, x, pg.fam)
			}
		})
	case KHash:
		pg.fam = hash.NewFamily(cfg.Seed, cfg.K)
		pg.sigs = alloc64(n * cfg.K)
		par.For(n, cfg.Workers, func(v int) {
			sketch.KHashSignature(neigh(uint32(v)), pg.fam, pg.KHashRow(uint32(v)))
		})
	case OneHash, KMV:
		pg.fam = hash.NewFamily(cfg.Seed, 1)
		pg.hashes = alloc64(n * cfg.K)
		pg.lens = allocI32(n)
		if cfg.StoreElems && cfg.Kind == OneHash {
			pg.elems = alloc32(n * cfg.K)
		}
		fn := func(x uint32) uint64 { return pg.fam.Hash(0, x) }
		par.For(n, cfg.Workers, func(v int) {
			var s sketch.BottomK
			if cfg.Kind == OneHash {
				s = sketch.OneHashSketch(neigh(uint32(v)), cfg.K, fn, cfg.StoreElems)
			} else {
				s = sketch.BottomK{Hashes: sketch.NewKMV(neigh(uint32(v)), cfg.K, fn).Hashes}
			}
			pg.lens[v] = int32(len(s.Hashes))
			copy(pg.hashes[v*cfg.K:], s.Hashes)
			if pg.elems != nil && s.Elems != nil {
				copy(pg.elems[v*cfg.K:], s.Elems)
			}
		})
	case HLL:
		pg.fam = hash.NewFamily(cfg.Seed, 1)
		// Match the budget: 2^p bytes per vertex ≈ K 64-bit words.
		p := uint8(4)
		for (1<<(p+1)) <= cfg.K*8 && p < 16 {
			p++
		}
		pg.hllP = p
		pg.hllReg = alloc8(n * (1 << p))
		par.For(n, cfg.Workers, func(v int) {
			row := sketch.HLL{Reg: pg.HLLRow(uint32(v)), P: p}
			for _, x := range neigh(uint32(v)) {
				row.Add(pg.fam.Hash(0, x))
			}
		})
	default:
		return nil, fmt.Errorf("core: unknown representation kind %d", cfg.Kind)
	}
	pg.initBFLUT()
	return pg, nil
}

// HLLRow returns vertex v's HyperLogLog registers (HLL only).
func (pg *PG) HLLRow(v uint32) []uint8 {
	m := 1 << pg.hllP
	return pg.hllReg[int(v)*m : (int(v)+1)*m]
}

// NumVertices returns the number of sketched sets.
func (pg *PG) NumVertices() int { return pg.n }

// SetSize returns the exact size of set v (the degree, §IV's "reasonable
// assumption for graph algorithms").
func (pg *PG) SetSize(v uint32) int { return int(pg.sizes[v]) }

// BloomRow returns vertex v's Bloom bit vector (BF only; aliases storage).
func (pg *PG) BloomRow(v uint32) bitset.Bits {
	return bitset.Bits(pg.bits[int(v)*pg.words : (int(v)+1)*pg.words])
}

// KHashRow returns vertex v's k-Hash signature (KHash only).
func (pg *PG) KHashRow(v uint32) sketch.KHashSig {
	k := pg.Cfg.K
	return sketch.KHashSig(pg.sigs[int(v)*k : (int(v)+1)*k])
}

// BottomKRow returns vertex v's 1-Hash/KMV sketch (aliases storage).
func (pg *PG) BottomKRow(v uint32) sketch.BottomK {
	k := pg.Cfg.K
	l := int(pg.lens[v])
	s := sketch.BottomK{Hashes: pg.hashes[int(v)*k : int(v)*k+l]}
	if pg.elems != nil {
		s.Elems = pg.elems[int(v)*k : int(v)*k+l]
	}
	return s
}

// IntCard estimates |N_u ∩ N_v| with the configured representation and
// estimator — the operation every PG-enhanced algorithm plugs in for the
// blue |X∩Y| terms of Listings 1–5.
func (pg *PG) IntCard(u, v uint32) float64 {
	switch pg.Cfg.Kind {
	case BF:
		a, b := pg.BloomRow(u), pg.BloomRow(v)
		switch pg.Cfg.Est {
		case EstBFL:
			if pg.lutL != nil {
				return pg.lutL[kernels.AndCount(a, b)]
			}
			return sketch.InterL(a, b, pg.Cfg.NumHashes)
		case EstBFOr:
			return sketch.InterOR(a, b, pg.Cfg.BloomBits, pg.Cfg.NumHashes, pg.SetSize(u), pg.SetSize(v))
		default:
			if pg.lut != nil {
				return pg.lut[kernels.AndCount(a, b)]
			}
			return sketch.InterAND(a, b, pg.Cfg.BloomBits, pg.Cfg.NumHashes)
		}
	case KHash:
		return sketch.KHashInter(pg.KHashRow(u), pg.KHashRow(v), pg.SetSize(u), pg.SetSize(v))
	case OneHash:
		a, b := pg.BottomKRow(u), pg.BottomKRow(v)
		if pg.Cfg.Est == Est1HSimple {
			return sketch.OneHashInterSimple(a, b, pg.Cfg.K, pg.SetSize(u), pg.SetSize(v))
		}
		return sketch.OneHashInter(a, b, pg.Cfg.K, pg.SetSize(u), pg.SetSize(v))
	case KMV:
		a := sketch.KMV{Hashes: pg.BottomKRow(u).Hashes}
		b := sketch.KMV{Hashes: pg.BottomKRow(v).Hashes}
		return sketch.InterKMV(a, b, pg.Cfg.K, pg.SetSize(u), pg.SetSize(v))
	case HLL:
		a := &sketch.HLL{Reg: pg.HLLRow(u), P: pg.hllP}
		b := &sketch.HLL{Reg: pg.HLLRow(v), P: pg.hllP}
		return sketch.InterHLL(a, b, pg.SetSize(u), pg.SetSize(v))
	}
	return 0
}

// IntCard3 estimates the triple intersection |N_w ∩ N_u ∩ N_v|, the
// 4-clique inner kernel. For BF it is a three-way AND (free composition
// of bit vectors); for the sample-based sketches it falls back to the
// minimum of pairwise estimates, a documented upper-bound heuristic.
func (pg *PG) IntCard3(w, u, v uint32) float64 {
	if pg.Cfg.Kind == BF {
		if pg.lut != nil {
			return pg.lut[kernels.AndCount3(pg.BloomRow(w), pg.BloomRow(u), pg.BloomRow(v))]
		}
		return sketch.InterAND3(pg.BloomRow(w), pg.BloomRow(u), pg.BloomRow(v), pg.Cfg.BloomBits, pg.Cfg.NumHashes)
	}
	m := pg.IntCard(w, u)
	if e := pg.IntCard(w, v); e < m {
		m = e
	}
	if e := pg.IntCard(u, v); e < m {
		m = e
	}
	return m
}

// HasElems reports whether 1-Hash sketches carry element IDs
// (Config.StoreElems), enabling the sample-based algorithms.
func (pg *PG) HasElems() bool { return pg.elems != nil }

// Contains answers a membership query "x ∈ N_v" on the sketch: exact
// semantics for BF (no false negatives); for sample-based sketches it
// reports membership in the sample only.
func (pg *PG) Contains(v, x uint32) bool {
	switch pg.Cfg.Kind {
	case BF:
		return sketch.BitsContain(pg.BloomRow(v), x, pg.fam)
	case KHash:
		h := pg.fam.Hash(0, x)
		for _, s := range pg.KHashRow(v) {
			if s == h {
				return true
			}
		}
		return false
	case OneHash, KMV:
		h := pg.fam.Hash(0, x)
		row := pg.BottomKRow(v).Hashes
		for _, s := range row {
			if s == h {
				return true
			}
		}
		return false
	}
	return false
}

// CertainAbsent reports whether the sketch PROVES x ∉ N_v: a true
// return is always correct, a false return means "maybe present" and
// needs exact verification. This is the sound pruning oracle of the
// pattern-mining plans — because it never produces a false dismissal,
// sketch-pruned exact enumeration stays bit-identical to exact-only.
//
//   - BF: Bloom filters have no false negatives, so a failed membership
//     probe is a proof of absence.
//   - 1H/KMV: a bottom-k row with SetSize(v) ≤ K retains every
//     neighbor's hash, so a missing hash is a proof; truncated rows
//     prove nothing (return false).
//   - kH/HLL: per-function minima / registers cannot prove absence.
func (pg *PG) CertainAbsent(v, x uint32) bool {
	switch pg.Cfg.Kind {
	case BF:
		return !sketch.BitsContain(pg.BloomRow(v), x, pg.fam)
	case OneHash, KMV:
		if pg.SetSize(v) > pg.Cfg.K {
			return false
		}
		h := pg.fam.Hash(0, x)
		row := pg.BottomKRow(v).Hashes
		// Rows are kept sorted ascending (§IX construction), so the
		// membership probe is a binary search.
		lo, hi := 0, len(row)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if row[mid] < h {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo == len(row) || row[lo] != h
	}
	return false
}

// Prober is the hot-loop form of CertainAbsent for Bloom rows: the kind
// dispatch, row slicing, and hash-family indirection are hoisted to
// construction, and the per-seed Murmur premix is cached, so one probe
// is b splitmix rounds plus b bit tests. Obtained via PG.Prober.
type Prober struct {
	bits  []uint64 // aliases the PG's row storage
	words int      // uint64 words per vertex row
	nbits int      // bits per row
	mixed []uint64 // premixed per-function seeds (Murmur64(seed_i))
}

// Prober returns a sound-absence prober over the Bloom rows, or nil
// when the representation has no constant-time absence proof (every
// kind but BF). The nil return is the signal to fall back to
// CertainAbsent — or to skip sketch pruning entirely.
func (pg *PG) Prober() *Prober {
	if pg.Cfg.Kind != BF || pg.words == 0 {
		return nil
	}
	mixed := make([]uint64, pg.Cfg.NumHashes)
	for i := range mixed {
		mixed[i] = hash.Murmur64(pg.fam.Seed(i))
	}
	return &Prober{bits: pg.bits, words: pg.words, nbits: pg.words * bitset.WordBits, mixed: mixed}
}

// Absent reports a PROOF that x ∉ N_v — the CertainAbsent contract:
// true is always correct, false means "maybe present".
func (p *Prober) Absent(v, x uint32) bool {
	base := int(v) * p.words
	for _, m := range p.mixed {
		i := hash.Range(hash.Mix64(uint64(x)^m), p.nbits)
		if p.bits[base+(i>>6)]&(1<<(uint(i)&63)) == 0 {
			return true
		}
	}
	return false
}

// ProbePos is one precomputed probe position: the in-row word offset
// and bit mask of one hash function evaluated at a fixed vertex. Rows
// are uniform width, so the same positions test that vertex against
// ANY row.
type ProbePos struct {
	Word int32
	Mask uint64
}

// B returns the number of hash functions (positions per signature).
func (p *Prober) B() int { return len(p.mixed) }

// SigInto writes x's probe positions into buf (len ≥ B()) and returns
// the filled prefix. Hoisting the signature turns a membership probe
// into one load per hash function (AbsentAt) — the edge relation is
// symmetric, so probing x against N_c's row answers the same question
// as probing c against N_x's.
func (p *Prober) SigInto(x uint32, buf []ProbePos) []ProbePos {
	for i, m := range p.mixed {
		pos := hash.Range(hash.Mix64(uint64(x)^m), p.nbits)
		buf[i] = ProbePos{Word: int32(pos >> 6), Mask: 1 << (uint(pos) & 63)}
	}
	return buf[:len(p.mixed)]
}

// AbsentAt reports a PROOF that the signature's vertex ∉ N_v.
func (p *Prober) AbsentAt(sig []ProbePos, v uint32) bool {
	base := int(v) * p.words
	for _, s := range sig {
		if p.bits[base+int(s.Word)]&s.Mask == 0 {
			return true
		}
	}
	return false
}

// Jaccard estimates the Jaccard similarity J(N_u, N_v) from the sketch,
// using exact degrees for the denominator where the representation
// estimates the intersection (Listing 6's pattern).
func (pg *PG) Jaccard(u, v uint32) float64 {
	inter := pg.IntCard(u, v)
	union := float64(pg.SetSize(u)+pg.SetSize(v)) - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// RowBytes returns the wire footprint in bytes of vertex v's sketch row
// — what the owner ships when a remote node requests the sketch in the
// §VIII-F distributed protocol. BF rows are the fixed filter size;
// MinHash/KMV rows are the occupied 64-bit slots (their count is
// implied by the response frame's payload length) plus 32-bit element
// IDs under StoreElems; HLL rows are the register array.
func (pg *PG) RowBytes(v uint32) int {
	switch pg.Cfg.Kind {
	case BF:
		return pg.words * 8
	case KHash:
		return pg.Cfg.K * 8
	case OneHash, KMV:
		b := int(pg.lens[v]) * 8
		if pg.elems != nil {
			b += int(pg.lens[v]) * 4
		}
		return b
	case HLL:
		return 1 << pg.hllP
	}
	return 0
}

// MemoryBits returns the sketch storage in bits — the quantity the
// "relative memory" axis of Figs. 4–7 reports against the CSR size.
func (pg *PG) MemoryBits() int64 {
	var bits int64
	bits += int64(len(pg.bits)) * 64
	bits += int64(len(pg.sigs)) * 64
	bits += int64(len(pg.hashes)) * 64
	bits += int64(len(pg.elems)) * 32
	bits += int64(len(pg.lens)) * 32
	bits += int64(len(pg.hllReg)) * 8
	return bits
}

// MemoryBytes returns the total resident sketch storage in bytes — the
// runtime-observable form of the storage budget, surfaced by pginfo and
// the serving /v1/stats endpoint.
func (pg *PG) MemoryBytes() int64 { return (pg.MemoryBits() + 7) / 8 }

// RelativeMemory returns MemoryBits / CSR bits, the budget actually used.
func (pg *PG) RelativeMemory() float64 {
	if pg.csrBits == 0 {
		return 0
	}
	return float64(pg.MemoryBits()) / float64(pg.csrBits)
}
