package core

import (
	"math"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/stats"
)

func buildOrFail(t *testing.T, g *graph.Graph, cfg Config) *PG {
	t.Helper()
	pg, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestConfigDefaults(t *testing.T) {
	g := graph.Kronecker(8, 8, 1)
	pg := buildOrFail(t, g, Config{Kind: BF})
	if pg.Cfg.Budget != 0.25 || pg.Cfg.NumHashes != 2 {
		t.Fatalf("defaults not applied: %+v", pg.Cfg)
	}
	if pg.Cfg.BloomBits%64 != 0 || pg.Cfg.BloomBits < 64 {
		t.Fatalf("BloomBits = %d", pg.Cfg.BloomBits)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Complete(4)
	if _, err := Build(g, Config{Kind: BF, Budget: 1.5}); err == nil {
		t.Fatal("budget > 1 must fail")
	}
	if _, err := Build(g, Config{Kind: BF, Budget: -0.1}); err == nil {
		t.Fatal("negative budget must fail")
	}
	if _, err := Build(g, Config{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := Build(g, Config{Kind: KHash, K: -5}); err == nil {
		t.Fatal("negative k must fail")
	}
}

func TestBudgetRespected(t *testing.T) {
	g := graph.Kronecker(10, 16, 3)
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		for _, s := range []float64{0.1, 0.33} {
			pg, err := Build(g, Config{Kind: kind, Budget: s, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Fixed-size rows can overshoot slightly on rounding; allow a
			// small multiple for tiny budgets, but it must stay bounded.
			if rel := pg.RelativeMemory(); rel > s*1.5+0.02 {
				t.Errorf("%v s=%v: relative memory %.3f", kind, s, rel)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		pg, err := Build(g, Config{Kind: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if pg.NumVertices() != 0 || pg.MemoryBits() != 0 {
			t.Fatalf("%v: empty graph invariants", kind)
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, _ := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}})
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		pg := buildOrFail(t, g, Config{Kind: kind, Seed: 2})
		if pg.SetSize(3) != 0 {
			t.Fatal("isolated degree")
		}
		if got := pg.IntCard(2, 3); got != 0 {
			t.Fatalf("%v: intersection of empty sets = %v", kind, got)
		}
		if got := pg.IntCard(0, 3); got != 0 {
			t.Fatalf("%v: intersection with empty set = %v", kind, got)
		}
	}
}

func TestIntCardAccuracyAllKinds(t *testing.T) {
	// On K_n every pair of adjacent vertices shares exactly n-2 neighbors.
	g := graph.Complete(40)
	want := 38.0
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		pg := buildOrFail(t, g, Config{Kind: kind, Budget: 0.33, Seed: 4})
		var errs []float64
		g.Edges(func(u, v uint32) {
			errs = append(errs, stats.RelativeError(pg.IntCard(u, v), want))
		})
		if m := stats.Mean(errs); m > 0.35 {
			t.Errorf("%v: mean relative error on K40 = %.3f", kind, m)
		}
	}
}

func TestIntCardSymmetry(t *testing.T) {
	g := graph.Kronecker(8, 10, 5)
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		pg := buildOrFail(t, g, Config{Kind: kind, Seed: 6})
		count := 0
		g.Edges(func(u, v uint32) {
			if count > 200 {
				return
			}
			count++
			if a, b := pg.IntCard(u, v), pg.IntCard(v, u); math.Abs(a-b) > 1e-9 {
				t.Fatalf("%v: IntCard(%d,%d)=%v != IntCard(%d,%d)=%v", kind, u, v, a, v, u, b)
			}
		})
	}
}

func TestBFEstimatorVariants(t *testing.T) {
	g := graph.Complete(30)
	for _, est := range []Estimator{EstAuto, EstBFAnd, EstBFL, EstBFOr} {
		pg := buildOrFail(t, g, Config{Kind: BF, Est: est, Budget: 0.33, Seed: 7})
		got := pg.IntCard(0, 1)
		if stats.RelativeError(got, 28) > 0.5 {
			t.Errorf("est=%d: IntCard = %v, want ~28", est, got)
		}
	}
	// EstAuto and EstBFAnd must agree exactly.
	a := buildOrFail(t, g, Config{Kind: BF, Est: EstAuto, Seed: 8})
	b := buildOrFail(t, g, Config{Kind: BF, Est: EstBFAnd, Seed: 8})
	if a.IntCard(0, 1) != b.IntCard(0, 1) {
		t.Fatal("EstAuto should default to AND for BF")
	}
}

func TestOneHashVariants(t *testing.T) {
	g := graph.Complete(30)
	u := buildOrFail(t, g, Config{Kind: OneHash, Seed: 9})
	s := buildOrFail(t, g, Config{Kind: OneHash, Est: Est1HSimple, Seed: 9})
	if u.IntCard(0, 1) <= 0 || s.IntCard(0, 1) <= 0 {
		t.Fatal("estimates must be positive on overlapping sets")
	}
}

func TestSeedReproducibility(t *testing.T) {
	g := graph.Kronecker(8, 8, 11)
	for _, kind := range []Kind{BF, KHash, OneHash, KMV} {
		a := buildOrFail(t, g, Config{Kind: kind, Seed: 42})
		b := buildOrFail(t, g, Config{Kind: kind, Seed: 42})
		c := buildOrFail(t, g, Config{Kind: kind, Seed: 43})
		sameAB, sameAC := true, true
		g.Edges(func(u, v uint32) {
			if a.IntCard(u, v) != b.IntCard(u, v) {
				sameAB = false
			}
			if a.IntCard(u, v) != c.IntCard(u, v) {
				sameAC = false
			}
		})
		if !sameAB {
			t.Errorf("%v: same seed must reproduce estimates", kind)
		}
		if sameAC {
			t.Errorf("%v: different seeds should perturb estimates", kind)
		}
	}
}

func TestBFContainsNoFalseNegatives(t *testing.T) {
	g := graph.Kronecker(8, 8, 13)
	pg := buildOrFail(t, g, Config{Kind: BF, Seed: 1})
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if !pg.Contains(v, u) {
				t.Fatalf("false negative: %d in N(%d)", u, v)
			}
		}
	}
}

func TestSampleContains(t *testing.T) {
	g := graph.Complete(10)
	// K large enough to hold every neighborhood: sample == set.
	pg := buildOrFail(t, g, Config{Kind: OneHash, K: 16, Seed: 1})
	for _, u := range g.Neighbors(0) {
		if !pg.Contains(0, u) {
			t.Fatal("full sample must contain every neighbor")
		}
	}
	kh := buildOrFail(t, g, Config{Kind: KHash, K: 8, Seed: 1})
	_ = kh.Contains(0, 1) // sample semantics: just must not panic
}

func TestIntCard3(t *testing.T) {
	g := graph.Complete(30) // any triple of distinct vertices shares 27 others
	bf := buildOrFail(t, g, Config{Kind: BF, Budget: 0.33, Seed: 3})
	if got := bf.IntCard3(0, 1, 2); stats.RelativeError(got, 27) > 0.4 {
		t.Fatalf("BF IntCard3 = %v, want ~27", got)
	}
	oh := buildOrFail(t, g, Config{Kind: OneHash, Budget: 0.33, Seed: 3})
	got := oh.IntCard3(0, 1, 2)
	// Fallback is min of pairwise estimates: an upper-bound heuristic;
	// must be within the pairwise range.
	if got < 0 || got > 30 {
		t.Fatalf("1H IntCard3 = %v out of range", got)
	}
}

func TestBuildOriented(t *testing.T) {
	g := graph.Complete(20)
	o := g.Orient(2)
	pg, err := BuildOriented(o, g.SizeBits(), Config{Kind: BF, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Out-degrees under a total order on K_n are n-1, n-2, ..., 0.
	sum := 0
	for v := 0; v < 20; v++ {
		sum += pg.SetSize(uint32(v))
	}
	if sum != g.NumEdges() {
		t.Fatalf("sum of oriented set sizes = %d, want m = %d", sum, g.NumEdges())
	}
}

func TestExactWhenSketchCoversNeighborhoods(t *testing.T) {
	// 1-Hash with k >= d gives exact intersections.
	g := graph.Complete(12)
	pg := buildOrFail(t, g, Config{Kind: OneHash, K: 32, Seed: 17})
	g.Edges(func(u, v uint32) {
		if got := pg.IntCard(u, v); math.Abs(got-10) > 1e-9 {
			t.Fatalf("k>=d must be exact: IntCard(%d,%d) = %v, want 10", u, v, got)
		}
	})
	// Same for KMV (sizes exact, union enumerated).
	kmv := buildOrFail(t, g, Config{Kind: KMV, K: 32, Seed: 17})
	g.Edges(func(u, v uint32) {
		if got := kmv.IntCard(u, v); math.Abs(got-10) > 1e-9 {
			t.Fatalf("KMV k>=d must be exact: got %v", got)
		}
	})
}

func TestStoreElems(t *testing.T) {
	g := graph.Complete(8)
	pg := buildOrFail(t, g, Config{Kind: OneHash, K: 16, StoreElems: true, Seed: 1})
	row := pg.BottomKRow(0)
	if row.Elems == nil || len(row.Elems) != len(row.Hashes) {
		t.Fatal("StoreElems must align element IDs with hashes")
	}
	noElems := buildOrFail(t, g, Config{Kind: OneHash, K: 16, Seed: 1})
	if noElems.BottomKRow(0).Elems != nil {
		t.Fatal("Elems must be absent when StoreElems is false")
	}
}

func TestJaccardEstimate(t *testing.T) {
	g := graph.Complete(30) // true J between adjacent vertices: 28/30
	pg := buildOrFail(t, g, Config{Kind: BF, Budget: 0.33, Seed: 19})
	j := pg.Jaccard(0, 1)
	if stats.RelativeError(j, 28.0/30) > 0.3 {
		t.Fatalf("Jaccard = %v, want ~%v", j, 28.0/30)
	}
	empty, _ := graph.FromEdges(2, nil)
	pge := buildOrFail(t, empty, Config{Kind: BF})
	if pge.Jaccard(0, 1) != 0 {
		t.Fatal("Jaccard of empty sets must be 0")
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := graph.Kronecker(8, 8, 1)
	n := int64(g.NumVertices())
	bf := buildOrFail(t, g, Config{Kind: BF, BloomBits: 256, Seed: 1})
	if bf.MemoryBits() != n*256 {
		t.Fatalf("BF memory = %d, want %d", bf.MemoryBits(), n*256)
	}
	kh := buildOrFail(t, g, Config{Kind: KHash, K: 8, Seed: 1})
	if kh.MemoryBits() != n*8*64 {
		t.Fatalf("kH memory = %d", kh.MemoryBits())
	}
	oh := buildOrFail(t, g, Config{Kind: OneHash, K: 8, StoreElems: true, Seed: 1})
	want := n*8*64 + n*8*32 + n*32
	if oh.MemoryBits() != want {
		t.Fatalf("1H memory = %d, want %d", oh.MemoryBits(), want)
	}
	for _, pg := range []*PG{bf, kh, oh} {
		if got, want := pg.MemoryBytes(), (pg.MemoryBits()+7)/8; got != want {
			t.Fatalf("MemoryBytes = %d, want %d", got, want)
		}
		if pg.MemoryBytes() <= 0 {
			t.Fatal("MemoryBytes must be positive for a built PG")
		}
	}
}

func TestHLLKind(t *testing.T) {
	g := graph.Complete(40)
	pg := buildOrFail(t, g, Config{Kind: HLL, K: 32, Seed: 3})
	if pg.Cfg.Kind.String() != "HLL" {
		t.Fatal("kind name")
	}
	var errs []float64
	g.Edges(func(u, v uint32) {
		errs = append(errs, stats.RelativeError(pg.IntCard(u, v), 38))
	})
	if m := stats.Mean(errs); m > 0.35 {
		t.Errorf("HLL mean relative error on K40 = %.3f", m)
	}
	if pg.MemoryBits() != int64(g.NumVertices())*int64(len(pg.HLLRow(0)))*8 {
		t.Fatal("HLL memory accounting")
	}
	// Budget-derived sizing stays within the budget.
	pgB := buildOrFail(t, g, Config{Kind: HLL, Budget: 0.25, Seed: 3})
	if rel := pgB.RelativeMemory(); rel > 0.3 {
		t.Errorf("HLL relative memory %.3f", rel)
	}
}

func TestHLLEmptyAndIsolated(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	pg := buildOrFail(t, g, Config{Kind: HLL, K: 16, Seed: 1})
	if got := pg.IntCard(2, 3); got != 0 {
		t.Fatalf("HLL empty intersection = %v", got)
	}
	if pg.Contains(0, 1) {
		t.Fatal("HLL cannot answer membership; Contains must be false")
	}
}

func TestEstimatorStringParseRoundTrip(t *testing.T) {
	for _, e := range []Estimator{EstAuto, EstBFAnd, EstBFL, EstBFOr, Est1HSimple} {
		got, err := ParseEstimator(e.String())
		if err != nil {
			t.Fatalf("ParseEstimator(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("ParseEstimator(%q) = %v, want %v", e.String(), got, e)
		}
	}
	if e, err := ParseEstimator(""); err != nil || e != EstAuto {
		t.Fatalf("empty string: got %v, %v; want EstAuto, nil", e, err)
	}
	if e, err := ParseEstimator(" Swamidass "); err != nil || e != EstBFOr {
		t.Fatalf("alias: got %v, %v; want EstBFOr, nil", e, err)
	}
	if _, err := ParseEstimator("nope"); err == nil {
		t.Fatal("unknown estimator must error")
	}
}
