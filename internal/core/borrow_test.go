package core

import (
	"errors"
	"reflect"
	"testing"

	"probgraph/internal/graph"
)

// borrowKinds is every representation the borrow mode must protect.
var borrowKinds = []Kind{BF, KHash, OneHash, KMV, HLL}

// borrowedCopy adopts a deep copy of pg's raw arrays via FromRawBorrowed,
// standing in for a read-only mapping: the test can safely detect writes
// by comparing against a second snapshot.
func borrowedCopy(t *testing.T, pg *PG) (*PG, Raw) {
	t.Helper()
	r := pg.Raw()
	cp := Raw{
		Cfg: r.Cfg, N: r.N, CSRBits: r.CSRBits, HLLP: r.HLLP,
		Sizes:  cloneSlice(r.Sizes),
		Bits:   cloneSlice(r.Bits),
		Sigs:   cloneSlice(r.Sigs),
		Hashes: cloneSlice(r.Hashes),
		Lens:   cloneSlice(r.Lens),
		Elems:  cloneSlice(r.Elems),
		HLLReg: cloneSlice(r.HLLReg),
	}
	b, err := FromRawBorrowed(cp)
	if err != nil {
		t.Fatalf("FromRawBorrowed: %v", err)
	}
	return b, cp
}

// snapshotRaw deep-copies a Raw for before/after comparison.
func snapshotRaw(r Raw) Raw {
	return Raw{
		Cfg: r.Cfg, N: r.N, CSRBits: r.CSRBits, HLLP: r.HLLP,
		Sizes:  cloneSlice(r.Sizes),
		Bits:   cloneSlice(r.Bits),
		Sigs:   cloneSlice(r.Sigs),
		Hashes: cloneSlice(r.Hashes),
		Lens:   cloneSlice(r.Lens),
		Elems:  cloneSlice(r.Elems),
		HLLReg: cloneSlice(r.HLLReg),
	}
}

// TestBorrowedImmutability is the satellite contract: every mutation
// entry point on a FromRawBorrowed PG returns ErrBorrowed and leaves the
// adopted arrays byte-identical, while reads keep working.
func TestBorrowedImmutability(t *testing.T) {
	g := graph.Kronecker(8, 7, 3)
	for _, k := range borrowKinds {
		t.Run(k.String(), func(t *testing.T) {
			cfg := Config{Kind: k, Budget: 0.25, Seed: 7}
			if k == OneHash {
				cfg.StoreElems = true
			}
			own, err := Build(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bor, backing := borrowedCopy(t, own)
			if !bor.Borrowed() {
				t.Fatal("FromRawBorrowed PG does not report Borrowed()")
			}
			if own.Borrowed() {
				t.Fatal("owned PG reports Borrowed()")
			}
			before := snapshotRaw(backing)

			if err := bor.Grow(bor.NumVertices() + 8); !errors.Is(err, ErrBorrowed) {
				t.Fatalf("Grow on borrowed PG: got %v, want ErrBorrowed", err)
			}
			if err := bor.AddNeighbor(0, uint32(g.NumVertices()-1)); !errors.Is(err, ErrBorrowed) {
				t.Fatalf("AddNeighbor on borrowed PG: got %v, want ErrBorrowed", err)
			}
			if err := bor.ResketchRow(1, []uint32{0, 2, 3}); !errors.Is(err, ErrBorrowed) {
				t.Fatalf("ResketchRow on borrowed PG: got %v, want ErrBorrowed", err)
			}

			if !reflect.DeepEqual(before, snapshotRaw(backing)) {
				t.Fatal("rejected mutations still altered the backing arrays")
			}

			// Reads are unaffected: the borrowed PG answers exactly like
			// the owned one it was copied from.
			n := uint32(g.NumVertices())
			for i := uint32(0); i < 64; i++ {
				u, v := (i*37)%n, (i*101+13)%n
				if own.IntCard(u, v) != bor.IntCard(u, v) {
					t.Fatalf("IntCard(%d,%d) differs between owned and borrowed", u, v)
				}
			}

			// Clone escapes the borrow: it owns fresh arrays, mutates
			// cleanly, and the backing stays untouched.
			cl := bor.Clone()
			if cl.Borrowed() {
				t.Fatal("Clone of a borrowed PG still reports Borrowed()")
			}
			if err := cl.ResketchRow(1, []uint32{0, 2, 3}); err != nil {
				t.Fatalf("ResketchRow on clone: %v", err)
			}
			if err := cl.Grow(cl.NumVertices() + 4); err != nil {
				t.Fatalf("Grow on clone: %v", err)
			}
			if err := cl.AddNeighbor(uint32(cl.NumVertices()-1), 0); err != nil {
				t.Fatalf("AddNeighbor on clone: %v", err)
			}
			if !reflect.DeepEqual(before, snapshotRaw(backing)) {
				t.Fatal("mutating the clone altered the borrowed backing arrays")
			}
		})
	}
}
