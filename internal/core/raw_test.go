package core

import (
	"reflect"
	"testing"

	"probgraph/internal/graph"
)

// TestFromRawReconstitutes pins the serialization bridge at the core
// layer: FromRaw(pg.Raw()) must reproduce the PG exactly — arrays,
// configuration, and the re-derived hash family — for every kind.
func TestFromRawReconstitutes(t *testing.T) {
	g := graph.Kronecker(8, 8, 3)
	for _, cfg := range []Config{
		{Kind: BF, Seed: 7},
		{Kind: KHash, Seed: 7, Budget: 0.5},
		{Kind: OneHash, Seed: 7},
		{Kind: OneHash, Seed: 7, StoreElems: true},
		{Kind: KMV, Seed: 7},
		{Kind: HLL, Seed: 7},
	} {
		pg, err := Build(g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		got, err := FromRaw(pg.Raw())
		if err != nil {
			t.Fatalf("%v: FromRaw: %v", cfg.Kind, err)
		}
		if !reflect.DeepEqual(pg, got) {
			t.Fatalf("%v: FromRaw(Raw()) differs from the source PG", cfg.Kind)
		}
	}
}

// TestFromRawRejectsDrift pins a few geometry-drift errors: arrays that
// contradict the recorded configuration must be refused, not adopted.
func TestFromRawRejectsDrift(t *testing.T) {
	g := graph.Kronecker(7, 6, 3)
	pg, err := Build(g, Config{Kind: BF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(r *Raw){
		func(r *Raw) { r.Cfg.Kind = Kind(99) },
		func(r *Raw) { r.Sizes = r.Sizes[:len(r.Sizes)-1] },
		func(r *Raw) { r.Bits = r.Bits[:len(r.Bits)-1] },
		func(r *Raw) { r.Cfg.BloomBits += 3 },
		func(r *Raw) { r.Cfg.NumHashes = 0 },
		func(r *Raw) { r.N = -1 },
	}
	for i, breakIt := range cases {
		r := pg.Raw()
		breakIt(&r)
		if _, err := FromRaw(r); err == nil {
			t.Fatalf("case %d: drifted raw view accepted", i)
		}
	}

	mh, err := Build(g, Config{Kind: OneHash, Seed: 1, StoreElems: true})
	if err != nil {
		t.Fatal(err)
	}
	r := mh.Raw()
	r.Lens[0] = int32(mh.Cfg.K + 1)
	if _, err := FromRaw(r); err == nil {
		t.Fatal("out-of-range bottom-k prefix length accepted")
	}
	r = mh.Raw()
	r.Elems = nil
	if _, err := FromRaw(r); err == nil {
		t.Fatal("missing element IDs under StoreElems accepted")
	}
}
