package core

import (
	"sort"

	"probgraph/internal/sketch"
)

// This file is the incremental mutation surface of a PG — the primitive
// layer behind internal/stream's DynamicGraph. The set representations
// the paper builds on are element-wise insertable (a Bloom filter OR, a
// MinHash slot min, a bottom-k insert, an HLL register max are all
// order-independent), so inserting a neighbor into resident sketch state
// reproduces the from-scratch build of the final neighborhood bit for
// bit. Deletions have no element-wise form (Bloom bits and register
// maxima are shared between elements), so they re-sketch only the
// affected rows via ResketchRow.

// cloneSlice deep-copies s, preserving nil-ness (HasElems keys off it).
func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Clone returns a deep copy sharing no mutable storage with pg; the hash
// family is shared (it is immutable after construction). Freeze paths
// clone so an immutable snapshot can be served while the original keeps
// ingesting. Cloning a borrowed PG copies every array out of the mapping
// onto the heap, so the clone is ordinary mutable state.
func (pg *PG) Clone() *PG {
	cp := *pg
	cp.sizes = cloneSlice(pg.sizes)
	cp.bits = cloneSlice(pg.bits)
	cp.sigs = cloneSlice(pg.sigs)
	cp.hashes = cloneSlice(pg.hashes)
	cp.lens = cloneSlice(pg.lens)
	cp.elems = cloneSlice(pg.elems)
	cp.hllReg = cloneSlice(pg.hllReg)
	cp.borrowed = false
	return &cp
}

// SetCSRBits updates the CSR baseline that RelativeMemory reports
// against — used after the underlying graph has grown or shrunk since
// the sketch was built.
func (pg *PG) SetCSRBits(bits int64) { pg.csrBits = bits }

// Grow extends the PG to n vertices, appending empty rows; a no-op when
// the PG already covers n. New rows sketch the empty set (all-zero Bloom
// bits and HLL registers, EmptySlot MinHash signatures, zero-length
// bottom-k prefixes), exactly what Build produces for isolated vertices.
// Returns ErrBorrowed for a PG adopted from a read-only mapping.
func (pg *PG) Grow(n int) error {
	if pg.borrowed {
		return ErrBorrowed
	}
	if n <= pg.n {
		return nil
	}
	old := pg.n
	pg.sizes = append(pg.sizes, make([]int32, n-old)...)
	switch pg.Cfg.Kind {
	case BF:
		pg.bits = append(pg.bits, make([]uint64, (n-old)*pg.words)...)
	case KHash:
		k := pg.Cfg.K
		pg.sigs = append(pg.sigs, make([]uint64, (n-old)*k)...)
		for i := old * k; i < n*k; i++ {
			pg.sigs[i] = sketch.EmptySlot
		}
	case OneHash, KMV:
		k := pg.Cfg.K
		pg.hashes = append(pg.hashes, make([]uint64, (n-old)*k)...)
		pg.lens = append(pg.lens, make([]int32, n-old)...)
		if pg.elems != nil {
			pg.elems = append(pg.elems, make([]uint32, (n-old)*k)...)
		}
	case HLL:
		m := 1 << pg.hllP
		pg.hllReg = append(pg.hllReg, make([]uint8, (n-old)*m)...)
	}
	pg.n = n
	return nil
}

// AddNeighbor incrementally inserts x into vertex v's neighborhood
// sketch and bumps the stored set size — the streaming insert path. The
// result is bit-identical to a from-scratch build of the final
// neighborhood for BF (OR of per-element bits), k-Hash (per-slot min),
// 1-Hash (bottom-k insert) and HLL (register max); for KMV the same
// holds unless distinct neighbors collide under the 64-bit hash, where
// the from-scratch build's truncate-then-dedup can retain one fewer
// slot. The caller must ensure x is not already a neighbor of v.
// Returns ErrBorrowed for a PG adopted from a read-only mapping.
func (pg *PG) AddNeighbor(v, x uint32) error {
	if pg.borrowed {
		return ErrBorrowed
	}
	pg.sizes[v]++
	switch pg.Cfg.Kind {
	case BF:
		sketch.AddToBits(pg.BloomRow(v), x, pg.fam)
	case KHash:
		row := pg.KHashRow(v)
		for i := range row {
			if h := pg.fam.Hash(i, x); h < row[i] {
				row[i] = h
			}
		}
	case OneHash, KMV:
		pg.insertBottomK(v, x)
	case HLL:
		s := sketch.HLL{Reg: pg.HLLRow(v), P: pg.hllP}
		s.Add(pg.fam.Hash(0, x))
	}
	return nil
}

// insertBottomK inserts x's hash into v's sorted bottom-k prefix,
// keeping element IDs aligned when they are stored.
func (pg *PG) insertBottomK(v, x uint32) {
	k := pg.Cfg.K
	base := int(v) * k
	l := int(pg.lens[v])
	row := pg.hashes[base : base+l : base+k]
	h := pg.fam.Hash(0, x)
	if pg.Cfg.Kind == KMV {
		// Distinct-value semantics: a hash already present is a no-op.
		i := sort.Search(l, func(i int) bool { return row[i] >= h })
		if i < l && row[i] == h {
			return
		}
	}
	if l == k {
		if h >= row[l-1] {
			// Matches the build-time heap, which skips h >= current max.
			return
		}
		i := sort.Search(l, func(i int) bool { return row[i] > h })
		copy(row[i+1:], row[i:l-1])
		row[i] = h
		if pg.elems != nil {
			er := pg.elems[base : base+l]
			copy(er[i+1:], er[i:l-1])
			er[i] = x
		}
		return
	}
	i := sort.Search(l, func(i int) bool { return row[i] > h })
	row = row[: l+1 : k]
	copy(row[i+1:], row[i:l])
	row[i] = h
	if pg.elems != nil {
		er := pg.elems[base : base+l+1]
		copy(er[i+1:], er[i:l])
		er[i] = x
	}
	pg.lens[v] = int32(l + 1)
}

// ResketchRow rebuilds vertex v's sketch from its full neighbor list —
// the deletion path (no probabilistic set here supports element-wise
// removal) and the general repair primitive. It runs the exact
// per-vertex construction Build runs, so the row is bit-identical to a
// from-scratch build of neigh. Returns ErrBorrowed for a PG adopted
// from a read-only mapping.
func (pg *PG) ResketchRow(v uint32, neigh []uint32) error {
	if pg.borrowed {
		return ErrBorrowed
	}
	pg.sizes[v] = int32(len(neigh))
	k := pg.Cfg.K
	switch pg.Cfg.Kind {
	case BF:
		row := pg.BloomRow(v)
		row.Reset()
		for _, x := range neigh {
			sketch.AddToBits(row, x, pg.fam)
		}
	case KHash:
		sketch.KHashSignature(neigh, pg.fam, pg.KHashRow(v))
	case OneHash, KMV:
		fn := func(x uint32) uint64 { return pg.fam.Hash(0, x) }
		var s sketch.BottomK
		if pg.Cfg.Kind == OneHash {
			s = sketch.OneHashSketch(neigh, k, fn, pg.elems != nil)
		} else {
			s = sketch.BottomK{Hashes: sketch.NewKMV(neigh, k, fn).Hashes}
		}
		pg.lens[v] = int32(len(s.Hashes))
		copy(pg.hashes[int(v)*k:], s.Hashes)
		if pg.elems != nil && s.Elems != nil {
			copy(pg.elems[int(v)*k:], s.Elems)
		}
	case HLL:
		row := pg.HLLRow(v)
		for i := range row {
			row[i] = 0
		}
		s := sketch.HLL{Reg: row, P: pg.hllP}
		for _, x := range neigh {
			s.Add(pg.fam.Hash(0, x))
		}
	}
	return nil
}
