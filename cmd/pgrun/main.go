// Command pgrun runs one graph-mining problem on one graph with a chosen
// representation and reports the result, its accuracy against the exact
// baseline, and the speedup — the single-experiment companion to pgbench.
// It is built on the Session API: one Session per invocation caches the
// orientation and the sketches, so exact and approximate runs share
// derived state.
//
// Examples:
//
//	pgrun -gen kron -scale 12 -algo tc -repr bf -budget 0.25
//	pgrun -graph g.el -algo cluster -measure jaccard -tau 0.15 -repr 1h
//	pgrun -gen ba -n 5000 -algo linkpred -measure cn
//	pgrun -algo tc -repr bf -est or     # Swamidass estimator (Eq. 29)
//	pgrun -algo pattern -pattern 4cycle -repr kh   # plan-compiled pattern mining
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"probgraph"
	"probgraph/internal/obs"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file (overrides -gen)")
		gen       = flag.String("gen", "kron", "generator: kron | er | ba | planted")
		scale     = flag.Int("scale", 11, "kron scale")
		ef        = flag.Int("ef", 16, "kron edge factor")
		n         = flag.Int("n", 2000, "er/ba/planted vertices")
		m         = flag.Int("m", 40000, "er edges")
		kBA       = flag.Int("k", 8, "ba attachment")
		algo      = flag.String("algo", "tc", "tc | 4clique | cluster | sim | linkpred | cc | pattern")
		patternS  = flag.String("pattern", "diamond", "pattern spec for -algo pattern (builtin name or edge list like 0-1,1-2,2-0)")
		repr      = flag.String("repr", "bf", "bf | kh | 1h | kmv")
		est       = flag.String("est", "auto", "estimator: auto | and | l | or | 1hsimple")
		budget    = flag.Float64("budget", 0.25, "storage budget s")
		b         = flag.Int("b", 2, "Bloom hash functions")
		kSketch   = flag.Int("sketchk", 0, "explicit MinHash/KMV k (0 = from budget)")
		measure   = flag.String("measure", "cn", "jaccard | overlap | cn | tn | aa | ra")
		tau       = flag.Float64("tau", 3, "clustering threshold")
		remove    = flag.Float64("remove", 0.1, "linkpred: removed edge fraction")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgrun"))
		return
	}

	g, err := loadGraph(*graphFile, *gen, *scale, *ef, *n, *m, *kBA, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	estimator, err := probgraph.ParseEstimator(*est)
	if err != nil {
		fatal(err)
	}
	sess, err := probgraph.NewSession(g,
		probgraph.WithKind(kindOf(*repr)),
		probgraph.WithEstimator(estimator),
		probgraph.WithBudget(*budget),
		probgraph.WithNumHashes(*b),
		probgraph.WithSketchK(*kSketch),
		probgraph.WithSeed(*seed),
		probgraph.WithWorkers(*workers),
	)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	msr := measureOf(*measure)

	switch *algo {
	case "tc":
		runCounting(ctx, sess,
			probgraph.TC{Mode: probgraph.Exact},
			probgraph.TC{Mode: probgraph.Sketched}, false, true)
	case "4clique":
		runCounting(ctx, sess,
			probgraph.KClique{K: 4, Mode: probgraph.Exact},
			probgraph.KClique{K: 4, Mode: probgraph.Sketched}, true, true)
	case "cc":
		runCounting(ctx, sess,
			probgraph.ClusteringCoeff{Mode: probgraph.Exact},
			probgraph.ClusteringCoeff{Mode: probgraph.Sketched}, false, false)
	case "cluster":
		exact := mustRun(ctx, sess, probgraph.JarvisPatrick{Measure: msr, Tau: *tau, Mode: probgraph.Exact})
		pg := warmSketch(ctx, sess, false)
		approx := mustRun(ctx, sess, probgraph.JarvisPatrick{Measure: msr, Tau: *tau, Mode: probgraph.Sketched})
		fmt.Printf("exact:  %d clusters, %d kept edges (%v)\n",
			exact.Clusters.NumClusters, len(exact.Clusters.Kept), exact.Elapsed)
		fmt.Printf("approx: %d clusters, %d kept edges (%v)\n",
			approx.Clusters.NumClusters, len(approx.Clusters.Kept), approx.Elapsed)
		report(exact.Value, approx.Value, exact.Elapsed, approx.Elapsed, pg.RelativeMemory())
	case "sim":
		count := 0
		g.Edges(func(u, v uint32) {
			if count >= 10 {
				return
			}
			count++
			exact := mustRun(ctx, sess, probgraph.VertexSim{U: u, V: v, Measure: msr, Mode: probgraph.Exact})
			approx := mustRun(ctx, sess, probgraph.VertexSim{U: u, V: v, Measure: msr, Mode: probgraph.Sketched})
			fmt.Printf("sim(%d,%d): exact=%.4f approx=%.4f\n", u, v, exact.Value, approx.Value)
		})
	case "pattern":
		p, err := probgraph.ParsePattern(*patternS)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pattern: %s (k=%d, m=%d)\n", p, p.K(), p.NumEdges())
		exact := mustRun(ctx, sess, probgraph.PatternCount{P: p, Mode: probgraph.Exact})
		pg := warmSketch(ctx, sess, false)
		pruned := mustRun(ctx, sess, probgraph.PatternCount{P: p, Mode: probgraph.Exact, Prune: true})
		if pruned.Value != exact.Value {
			fatal(fmt.Errorf("sketch-pruned count %v != exact %v", pruned.Value, exact.Value))
		}
		fmt.Printf("pruned: %.4g (%v) — bit-identical to exact, %d candidates sketch-pruned\n",
			pruned.Value, pruned.Elapsed, pruned.PatternStats.SketchPruned)
		approx := mustRun(ctx, sess, probgraph.Pattern(p))
		report(exact.Value, approx.Value, exact.Elapsed, approx.Elapsed, pg.RelativeMemory())
		if approx.Bound > 0 {
			fmt.Printf("Thm VII.1 (pattern): |est - exact| <= %.4g at %.0f%% confidence\n",
				approx.Bound, 100*approx.Confidence)
		}
	case "linkpred":
		exact := mustRun(ctx, sess, probgraph.LinkPred{Measure: msr, RemoveFrac: *remove, Mode: probgraph.Exact})
		approx := mustRun(ctx, sess, probgraph.LinkPred{Measure: msr, RemoveFrac: *remove, Mode: probgraph.Sketched})
		fmt.Printf("exact:  recovered %d/%d (efficiency %.3f)\n",
			exact.LinkPred.Hits, exact.LinkPred.Removed, exact.Value)
		fmt.Printf("approx: recovered %d/%d (efficiency %.3f)\n",
			approx.LinkPred.Hits, approx.LinkPred.Removed, approx.Value)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

// mustRun executes one kernel or exits.
func mustRun(ctx context.Context, sess *probgraph.Session, k probgraph.Kernel) probgraph.Result {
	res, err := sess.Run(ctx, k)
	if err != nil {
		fatal(err)
	}
	return res
}

// warmSketch builds (and times) the sketch the approximate kernel will
// use, so the reported approximate runtime excludes construction — the
// paper reports build cost separately (Table V).
func warmSketch(ctx context.Context, sess *probgraph.Session, oriented bool) *probgraph.PG {
	start := time.Now()
	var (
		pg  *probgraph.PG
		err error
	)
	if oriented {
		pg, err = sess.OrientedPG(ctx)
	} else {
		pg, err = sess.PG(ctx)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sketch build: %v (%.1f%% extra memory)\n", time.Since(start), 100*pg.RelativeMemory())
	return pg
}

// runCounting compares a counting kernel's exact baseline against its
// sketch estimate, reporting accuracy, speedup, memory, and the Theorem
// VII.1 bound when the representation carries one. For kernels that run
// over the orientation it is built up front, so both reported timings
// are the kernel alone.
func runCounting(ctx context.Context, sess *probgraph.Session, exactK, approxK probgraph.Kernel, oriented, needsOrient bool) {
	if needsOrient {
		if _, err := sess.Oriented(ctx); err != nil {
			fatal(err)
		}
	}
	exact := mustRun(ctx, sess, exactK)
	pg := warmSketch(ctx, sess, oriented)
	approx := mustRun(ctx, sess, approxK)
	report(exact.Value, approx.Value, exact.Elapsed, approx.Elapsed, pg.RelativeMemory())
	if approx.Bound > 0 {
		fmt.Printf("Thm VII.1: |est - exact| <= %.4g at %.0f%% confidence\n",
			approx.Bound, 100*approx.Confidence)
	}
}

func report(exact, approx float64, exactTime, approxTime time.Duration, relMem float64) {
	fmt.Printf("exact  = %.4g  (%v)\n", exact, exactTime)
	fmt.Printf("approx = %.4g  (%v)\n", approx, approxTime)
	if exact != 0 {
		fmt.Printf("accuracy: %.2f%% | speedup: %.2fx | extra memory: %.1f%%\n",
			100*(1-math.Abs(approx-exact)/exact),
			float64(exactTime)/float64(approxTime),
			100*relMem)
	}
}

func loadGraph(file, gen string, scale, ef, n, m, k int, seed uint64) (*probgraph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return probgraph.ReadEdgeList(f)
	}
	switch gen {
	case "kron":
		return probgraph.Kronecker(scale, ef, seed), nil
	case "er":
		return probgraph.ErdosRenyi(n, m, seed), nil
	case "ba":
		return probgraph.BarabasiAlbert(n, k, seed), nil
	case "planted":
		return probgraph.PlantedPartition(n, 4, 0.3, 0.01, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}

func kindOf(s string) probgraph.Kind {
	k, err := probgraph.ParseKind(s)
	if err != nil {
		fatal(err)
	}
	return k
}

func measureOf(s string) probgraph.Measure {
	switch s {
	case "jaccard":
		return probgraph.Jaccard
	case "overlap":
		return probgraph.Overlap
	case "cn":
		return probgraph.CommonNeighbors
	case "tn":
		return probgraph.TotalNeighbors
	case "aa":
		return probgraph.AdamicAdar
	case "ra":
		return probgraph.ResourceAllocation
	}
	fatal(fmt.Errorf("unknown measure %q", s))
	return probgraph.CommonNeighbors
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgrun:", err)
	os.Exit(1)
}
