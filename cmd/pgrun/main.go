// Command pgrun runs one graph-mining problem on one graph with a chosen
// representation and reports the result, its accuracy against the exact
// baseline, and the speedup — the single-experiment companion to pgbench.
//
// Examples:
//
//	pgrun -gen kron -scale 12 -algo tc -repr bf -budget 0.25
//	pgrun -graph g.el -algo cluster -measure jaccard -tau 0.15 -repr 1h
//	pgrun -gen ba -n 5000 -algo linkpred -measure cn
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"probgraph"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file (overrides -gen)")
		gen       = flag.String("gen", "kron", "generator: kron | er | ba | planted")
		scale     = flag.Int("scale", 11, "kron scale")
		ef        = flag.Int("ef", 16, "kron edge factor")
		n         = flag.Int("n", 2000, "er/ba/planted vertices")
		m         = flag.Int("m", 40000, "er edges")
		kBA       = flag.Int("k", 8, "ba attachment")
		algo      = flag.String("algo", "tc", "tc | 4clique | cluster | sim | linkpred | cc")
		repr      = flag.String("repr", "bf", "bf | kh | 1h | kmv")
		est       = flag.String("est", "auto", "auto | and | l | or | 1hsimple")
		budget    = flag.Float64("budget", 0.25, "storage budget s")
		b         = flag.Int("b", 2, "Bloom hash functions")
		kSketch   = flag.Int("sketchk", 0, "explicit MinHash/KMV k (0 = from budget)")
		measure   = flag.String("measure", "cn", "jaccard | overlap | cn | tn | aa | ra")
		tau       = flag.Float64("tau", 3, "clustering threshold")
		remove    = flag.Float64("remove", 0.1, "linkpred: removed edge fraction")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
	)
	flag.Parse()

	g, err := loadGraph(*graphFile, *gen, *scale, *ef, *n, *m, *kBA, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	cfg := probgraph.Config{
		Kind:      kindOf(*repr),
		Est:       estOf(*est),
		Budget:    *budget,
		NumHashes: *b,
		K:         *kSketch,
		Seed:      *seed,
	}
	msr := measureOf(*measure)

	switch *algo {
	case "tc":
		runCounting(g, cfg, *workers,
			func() float64 { return float64(probgraph.ExactTriangleCount(g, *workers)) },
			func(pg *probgraph.PG) float64 { return probgraph.TriangleCount(g, pg, *workers) })
	case "4clique":
		o := probgraph.Orient(g, *workers)
		exactStart := time.Now()
		exact := float64(probgraph.ExactFourCliqueCount(g, *workers))
		exactTime := time.Since(exactStart)
		pg, err := probgraph.BuildOriented(o, g.SizeBits(), cfg)
		if err != nil {
			fatal(err)
		}
		approxStart := time.Now()
		approx := probgraph.FourCliqueCount(o, pg, *workers)
		approxTime := time.Since(approxStart)
		report(exact, approx, exactTime, approxTime, pg.RelativeMemory())
	case "cluster":
		exactStart := time.Now()
		exact := probgraph.Cluster(g, msr, *tau, *workers)
		exactTime := time.Since(exactStart)
		pg, err := probgraph.Build(g, cfg)
		if err != nil {
			fatal(err)
		}
		approxStart := time.Now()
		approx := probgraph.PGCluster(g, pg, msr, *tau, *workers)
		approxTime := time.Since(approxStart)
		fmt.Printf("exact:  %d clusters, %d kept edges (%v)\n", exact.NumClusters, len(exact.Kept), exactTime)
		fmt.Printf("approx: %d clusters, %d kept edges (%v)\n", approx.NumClusters, len(approx.Kept), approxTime)
		report(float64(exact.NumClusters), float64(approx.NumClusters), exactTime, approxTime, pg.RelativeMemory())
	case "sim":
		pg, err := probgraph.Build(g, cfg)
		if err != nil {
			fatal(err)
		}
		count := 0
		g.Edges(func(u, v uint32) {
			if count >= 10 {
				return
			}
			count++
			fmt.Printf("sim(%d,%d): exact=%.4f approx=%.4f\n",
				u, v, probgraph.Similarity(g, u, v, msr), probgraph.PGSimilarity(g, pg, u, v, msr))
		})
	case "linkpred":
		exact, err := probgraph.LinkPrediction(g, msr, *remove, *seed, nil, *workers)
		if err != nil {
			fatal(err)
		}
		approx, err := probgraph.LinkPrediction(g, msr, *remove, *seed, &cfg, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact:  recovered %d/%d (efficiency %.3f)\n", exact.Hits, exact.Removed, exact.Efficiency)
		fmt.Printf("approx: recovered %d/%d (efficiency %.3f)\n", approx.Hits, approx.Removed, approx.Efficiency)
	case "cc":
		runCounting(g, cfg, *workers,
			func() float64 { return probgraph.ClusteringCoefficient(g, *workers) },
			func(pg *probgraph.PG) float64 { return probgraph.PGClusteringCoefficient(g, pg, *workers) })
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func runCounting(g *probgraph.Graph, cfg probgraph.Config, workers int,
	exactF func() float64, approxF func(*probgraph.PG) float64) {
	exactStart := time.Now()
	exact := exactF()
	exactTime := time.Since(exactStart)
	buildStart := time.Now()
	pg, err := probgraph.Build(g, cfg)
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(buildStart)
	approxStart := time.Now()
	approx := approxF(pg)
	approxTime := time.Since(approxStart)
	fmt.Printf("sketch build: %v (%.1f%% extra memory)\n", buildTime, 100*pg.RelativeMemory())
	report(exact, approx, exactTime, approxTime, pg.RelativeMemory())
}

func report(exact, approx float64, exactTime, approxTime time.Duration, relMem float64) {
	fmt.Printf("exact  = %.0f  (%v)\n", exact, exactTime)
	fmt.Printf("approx = %.0f  (%v)\n", approx, approxTime)
	if exact != 0 {
		fmt.Printf("accuracy: %.2f%% | speedup: %.2fx | extra memory: %.1f%%\n",
			100*(1-math.Abs(approx-exact)/exact),
			float64(exactTime)/float64(approxTime),
			100*relMem)
	}
}

func loadGraph(file, gen string, scale, ef, n, m, k int, seed uint64) (*probgraph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return probgraph.ReadEdgeList(f)
	}
	switch gen {
	case "kron":
		return probgraph.Kronecker(scale, ef, seed), nil
	case "er":
		return probgraph.ErdosRenyi(n, m, seed), nil
	case "ba":
		return probgraph.BarabasiAlbert(n, k, seed), nil
	case "planted":
		return probgraph.PlantedPartition(n, 4, 0.3, 0.01, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}

func kindOf(s string) probgraph.Kind {
	k, err := probgraph.ParseKind(s)
	if err != nil {
		fatal(err)
	}
	return k
}

func estOf(s string) probgraph.Estimator {
	switch s {
	case "auto":
		return probgraph.EstAuto
	case "and":
		return probgraph.EstBFAnd
	case "l":
		return probgraph.EstBFL
	case "or":
		return probgraph.EstBFOr
	case "1hsimple":
		return probgraph.Est1HSimple
	}
	fatal(fmt.Errorf("unknown estimator %q", s))
	return probgraph.EstAuto
}

func measureOf(s string) probgraph.Measure {
	switch s {
	case "jaccard":
		return probgraph.Jaccard
	case "overlap":
		return probgraph.Overlap
	case "cn":
		return probgraph.CommonNeighbors
	case "tn":
		return probgraph.TotalNeighbors
	case "aa":
		return probgraph.AdamicAdar
	case "ra":
		return probgraph.ResourceAllocation
	}
	fatal(fmt.Errorf("unknown measure %q", s))
	return probgraph.CommonNeighbors
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgrun:", err)
	os.Exit(1)
}
