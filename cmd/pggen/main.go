// Command pggen generates synthetic graphs to edge-list or binary CSR
// files: the Kronecker/Erdős–Rényi/Barabási–Albert/planted-partition
// models the evaluation uses, plus the Table VIII dataset stand-ins by
// name.
//
// Examples:
//
//	pggen -model kron -scale 14 -ef 16 -o g.el
//	pggen -dataset bio-CE-PG -o bio.el
//	pggen -model ba -n 10000 -k 8 -binary -o g.pgb
package main

import (
	"flag"
	"fmt"
	"os"

	"probgraph"
	"probgraph/internal/bench"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
)

func main() {
	var (
		model   = flag.String("model", "kron", "generator: kron | er | ba | planted | complete")
		dataset = flag.String("dataset", "", "generate a Table VIII stand-in by name instead")
		scale   = flag.Int("scale", 12, "kron: log2 of vertex count")
		ef      = flag.Int("ef", 16, "kron: edge factor")
		n       = flag.Int("n", 1000, "er/ba/planted/complete: vertex count")
		m       = flag.Int("m", 10000, "er: edge count")
		k       = flag.Int("k", 4, "ba: edges per new vertex")
		comm    = flag.Int("comm", 4, "planted: community count")
		pin     = flag.Float64("pin", 0.3, "planted: within-community edge probability")
		pout    = flag.Float64("pout", 0.01, "planted: cross-community edge probability")
		seed    = flag.Uint64("seed", 42, "random seed")
		binary  = flag.Bool("binary", false, "write binary CSR instead of an edge list")
		out     = flag.String("o", "-", "output file (- for stdout)")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pggen"))
		return
	}

	var g *probgraph.Graph
	if *dataset != "" {
		spec, err := bench.Find(*dataset)
		if err != nil {
			fatal(err)
		}
		g = spec.Build(1.0)
	} else {
		switch *model {
		case "kron":
			g = probgraph.Kronecker(*scale, *ef, *seed)
		case "er":
			g = probgraph.ErdosRenyi(*n, *m, *seed)
		case "ba":
			g = probgraph.BarabasiAlbert(*n, *k, *seed)
		case "planted":
			g = probgraph.PlantedPartition(*n, *comm, *pin, *pout, *seed)
		case "complete":
			g = probgraph.Complete(*n)
		default:
			fatal(fmt.Errorf("unknown model %q", *model))
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *binary {
		err = graph.WriteBinary(w, g)
	} else {
		err = graph.WriteEdgeList(w, g)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pggen: wrote graph with n=%d m=%d\n", g.NumVertices(), g.NumEdges())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pggen:", err)
	os.Exit(1)
}
