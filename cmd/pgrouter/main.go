// Command pgrouter fronts a fleet of pgshard workers with the same HTTP
// API pgserve exposes — existing clients (pgload included) work against
// it unchanged — plus the cluster control surface:
//
//	POST /v1/query           point queries, routed to the owning shard
//	GET  /v1/stats           serve-compatible stats + per-shard cluster section
//	POST /v1/cluster/kernel  scatter-gather TC / similarity over every shard
//	POST /v1/cluster/swap    rolling swap of the fleet onto a new artifact
//	GET  /healthz            {"status","shards","up"}; 503 unless all shards up
//	GET  /metrics            Prometheus exposition (per-shard health, RPC
//	                         latency, measured wire bytes, row-cache traffic)
//	GET  /debug/pprof/*      Go profiling endpoints
//
// Usage:
//
//	pgrouter -addr 127.0.0.1:8080 \
//	    -shards 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// The -shards list must match each shard's -peers list, in the same
// order; the router validates every shard's self-reported position and
// graph shape at startup.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probgraph/internal/cluster"
	"probgraph/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		shards      = flag.String("shards", "", "comma-separated shard RPC addresses in index order (required)")
		cacheSize   = flag.Int("cache", 1<<16, "router row-cache entries (0 = disabled)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per point/row RPC budget")
		partialWait = flag.Duration("partial-timeout", 2*time.Minute, "per shard budget for one global-kernel partial")
		connectWait = flag.Duration("connect-wait", 10*time.Second, "how long to retry unreachable shards at startup")
		health      = flag.Duration("health-interval", 500*time.Millisecond, "shard health probe cadence")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgrouter"))
		return
	}
	if *shards == "" {
		log.Fatal("pgrouter: -shards is required (comma-separated pgshard addresses)")
	}
	addrs := strings.Split(*shards, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	cache := *cacheSize
	if cache == 0 {
		cache = -1
	}

	r, err := cluster.Dial(cluster.RouterConfig{
		Addrs: addrs, CacheSize: cache,
		Timeout: *timeout, PartialTimeout: *partialWait,
		ConnectWait: *connectWait, HealthInterval: *health,
	})
	if err != nil {
		log.Fatalf("pgrouter: %v", err)
	}
	defer r.Close()
	s := r.Stats()
	log.Printf("pgrouter: %s", obs.VersionString("pgrouter"))
	log.Printf("pgrouter: %d/%d shards up, serving n=%d m=%d epoch %d",
		s.Cluster.Healthy, s.Cluster.Shards, s.Vertices, s.Edges, s.Epoch)

	reg := obs.Default()
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntimeMetrics(reg)
	r.RegisterMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mux.Handle("GET /metrics", obs.Handler(reg))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("pgrouter: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	log.Printf("pgrouter: listening on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pgrouter: %v", err)
	}
}
