// Command pginfo prints structural statistics of a graph: size, degree
// distribution, triangle count, clustering coefficient — the quantities
// that determine how well ProbGraph will do on it (degree skew drives
// the load-balancing advantage; density drives sketch sizing).
//
// Usage:
//
//	pginfo graph.el
//	pggen -model kron -scale 12 | pginfo -
//	pginfo -artifact web.pg      # also prints artifact section sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"probgraph"
	"probgraph/internal/obs"
)

func main() {
	triangles := flag.Bool("tc", true, "compute triangle count and clustering coefficient")
	binary := flag.Bool("binary", false, "input is binary CSR format")
	artifact := flag.Bool("artifact", false, "input is a binary artifact (.pg); also prints section sizes")
	pgMem := flag.Bool("pg", true, "build sketches and report their resident memory")
	kind := flag.String("kind", "BF", "sketch kind for -pg (BF,kH,1H,KMV,HLL)")
	budget := flag.Float64("budget", 0.25, "storage budget for -pg")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pginfo"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pginfo [-tc=false] [-binary|-artifact] [-pg=false] [-kind BF] [-budget 0.25] <file|->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var g *probgraph.Graph
	var art *probgraph.Artifact
	var artInfo *probgraph.ArtifactInfo
	var err error
	switch {
	case *artifact:
		art, artInfo, err = probgraph.DecodeArtifact(in)
		if err == nil {
			g = art.G
		}
	case *binary:
		g, err = probgraph.ReadBinary(in)
	default:
		g, err = probgraph.ReadEdgeList(in)
	}
	if err != nil {
		fatal(err)
	}

	n, m := g.NumVertices(), g.NumEdges()
	fmt.Printf("vertices        %d\n", n)
	fmt.Printf("edges           %d\n", m)
	fmt.Printf("avg degree      %.2f\n", g.AvgDegree())
	fmt.Printf("max degree      %d\n", g.MaxDegree())
	fmt.Printf("CSR size        %d bits\n", g.SizeBits())

	// Degree histogram in powers of two.
	hist := map[int]int{}
	maxBucket := 0
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		b := 0
		for dd := d; dd > 1; dd >>= 1 {
			b++
		}
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	fmt.Println("degree histogram (log2 buckets):")
	for b := 0; b <= maxBucket; b++ {
		if hist[b] == 0 {
			continue
		}
		bar := strings.Repeat("#", scaleBar(hist[b], n))
		fmt.Printf("  2^%-2d %8d %s\n", b, hist[b], bar)
	}

	switch {
	case art != nil:
		// The artifact carries its sketches: report resident memory next
		// to the on-disk section bytes instead of building anything.
		for _, k := range art.Kinds {
			pg := art.PGs[k]
			fmt.Printf("sketch memory   %d bytes (%v, s=%.2f, %.1f%% of CSR)\n",
				pg.MemoryBytes(), k, pg.Cfg.Budget, 100*pg.RelativeMemory())
		}
		fmt.Printf("artifact size   %d bytes (format v%d)\n", artInfo.Bytes, artInfo.Version)
		fmt.Println("artifact sections:")
		for _, s := range artInfo.Sections {
			fmt.Printf("  %-10s %12d bytes  crc32c %08x\n", s.Name, s.Bytes, s.CRC)
		}
	case *pgMem:
		k, err := probgraph.ParseKind(*kind)
		if err != nil {
			fatal(err)
		}
		pg, err := probgraph.Build(g, probgraph.Config{Kind: k, Budget: *budget})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sketch memory   %d bytes (%v, s=%.2f, %.1f%% of CSR)\n",
			pg.MemoryBytes(), k, *budget, 100*pg.RelativeMemory())
	}

	if *triangles {
		tc := probgraph.ExactTriangleCount(g, 0)
		fmt.Printf("triangles       %d\n", tc)
		fmt.Printf("clustering coef %.4f\n", probgraph.ClusteringCoefficient(g, 0))
		gm := probgraph.MomentsOf(g)
		fmt.Printf("sum deg^2       %.3g\n", gm.SumDeg2)
		fmt.Printf("MH 95%% TC dev   %.3g (k=64, Thm VII.1)\n", probgraph.TCDeviationMinHash(gm, 64, 0.95))
	}
}

func scaleBar(count, total int) int {
	if total == 0 {
		return 0
	}
	w := count * 50 / total
	if w == 0 && count > 0 {
		w = 1
	}
	return w
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pginfo:", err)
	os.Exit(1)
}
