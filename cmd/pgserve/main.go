// Command pgserve loads (or generates) a graph, builds an immutable
// ProbGraph snapshot, and serves the online query API over HTTP JSON:
//
//	POST /v1/query   {"op":"similarity","u":3,"v":9,"measure":"jaccard"}
//	POST /v1/ingest  {"add":[[1,2]],"del":[[0,7]]}  (with -stream)
//	GET  /v1/stats   snapshot shape, sketch memory, cache/batcher counters
//	GET  /v1/trace   slow-request journal (threshold set by -slow)
//	GET  /metrics    Prometheus text exposition of every registered metric
//	GET  /debug/pprof/*  Go profiling endpoints (CPU, heap, goroutines)
//	GET  /healthz    liveness
//
// Usage:
//
//	pgserve -gen kron -scale 12 -deg 16          # synthetic snapshot
//	pgserve -graph web.el -kinds BF,1H -budget 0.25
//	pgserve -gen kron -scale 12 -stream          # accept live edge batches
//	pgserve -artifact web.pg                     # warm start from pgpack output
//	pgserve -artifact web.pg -mmap               # zero-copy: serve rows from the page cache
//	pgserve -stream -artifact web.pg -save web.pg  # durable epochs + resume
//
// With -stream the server owns a stream.DynamicGraph: each /v1/ingest
// batch updates the per-vertex sketches incrementally, freezes a new
// epoch, and hot-swaps it under the live query load (in-flight queries
// finish on their epoch; the result cache invalidates by epoch).
//
// With -artifact the snapshot is booted from a binary artifact written
// by pgpack or -save: no edge-list parsing, no re-orientation, no
// sketch builds — the cold-start path is pure IO. Adding -mmap removes
// even that IO: the v2 artifact is mapped read-only and the CSR rows
// and sketch arrays are served straight from the mapping, so cold start
// is page-table setup plus one CRC sweep, restarts against a warm page
// cache fault almost nothing, graphs larger than RAM serve out-of-core,
// and every process serving the same file shares its pages. /v1/stats
// reports decode_mode, mapped_bytes, and major_faults. v1 artifacts and
// non-linux platforms fall back to the heap decode transparently (run
// pgpack -upgrade to rewrite v1 as v2). Sketch geometry and
// seed come from the artifact; -kinds may select a resident subset and
// -est may override the estimator, other sketch flags are ignored. With
// -save every served epoch is written back (atomically, temp+rename),
// so a crashed or restarted -stream server resumes from its last
// frozen epoch instead of its original input.
//
// Drive it with pgload, or curl:
//
//	curl -s localhost:8080/v1/query -d '{"op":"topk","u":7,"k":5}'
//	curl -s localhost:8080/v1/ingest -d '{"add":[[3,199],[4,1877]]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
	"probgraph/internal/stream"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		graphFile  = flag.String("graph", "", "edge-list file to serve ('-' = stdin)")
		binary     = flag.Bool("binary", false, "graph file is binary CSR format")
		gen        = flag.String("gen", "kron", "generator when no -graph: kron|er|ba|community")
		scale      = flag.Int("scale", 12, "kron scale (2^scale vertices) / community size log2")
		deg        = flag.Int("deg", 16, "average degree for the generator")
		kinds      = flag.String("kinds", "", "comma-separated sketch kinds to build (BF,kH,1H,KMV,HLL); default BF, or every resident kind with -artifact")
		est        = flag.String("est", "auto", "|X∩Y| estimator within the representation: auto | and | l | or | 1hsimple")
		budget     = flag.Float64("budget", 0.25, "storage budget s")
		seed       = flag.Uint64("seed", 42, "sketch/generator seed")
		workers    = flag.Int("workers", 0, "engine workers (0 = all cores)")
		cacheSize  = flag.Int("cache", 1<<16, "result cache entries (0 = disabled)")
		maxBatch   = flag.Int("batch", 64, "max queries coalesced per batch")
		batchDelay = flag.Duration("batchdelay", 200*time.Microsecond, "max wait to fill a batch (0 = no wait)")
		streaming  = flag.Bool("stream", false, "enable /v1/ingest: maintain sketches incrementally and hot-swap epochs")
		artifact   = flag.String("artifact", "", "warm-start from a binary artifact (.pg) written by pgpack or -save")
		useMmap    = flag.Bool("mmap", false, "open -artifact zero-copy: serve CSR rows and sketches straight from a read-only mmap (v2 artifacts on linux; falls back to heap decode otherwise)")
		save       = flag.String("save", "", "persist the snapshot to this artifact file; with -stream, every frozen epoch is written")
		slow       = flag.Duration("slow", 100*time.Millisecond, "journal requests slower than this in GET /v1/trace (0 journals everything)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgserve"))
		return
	}

	kindList, err := parseKinds(*kinds)
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	estimator, err := core.ParseEstimator(*est)
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	snapCfg := serve.SnapshotConfig{
		Kinds: kindList, Est: estimator, Budget: *budget, Seed: *seed, Workers: *workers,
	}

	if *useMmap && *artifact == "" {
		log.Fatalf("pgserve: -mmap requires -artifact (there is no file to map)")
	}

	// Resolve the graph source: a decoded artifact (warm start) or an
	// edge list / generator (cold build). With -mmap the artifact is not
	// heap-decoded here: the non-streaming path maps it below
	// (OpenArtifactMmap) and serves straight from the mapping; the
	// streaming path maps it transiently — NewWith deep-copies the
	// adjacency and clones the sketches into mutable form, so the mapping
	// is closed as soon as the DynamicGraph is built.
	var (
		art     *pgio.Artifact
		artInfo *pgio.FileInfo
		g       *graph.Graph
		mapped  *pgio.Mapped // streaming -mmap only; closed after NewWith
	)
	switch {
	case *artifact != "" && *useMmap && !*streaming:
		// Mapped below, where the snapshot is built to own the mapping.
	case *artifact != "":
		if *useMmap {
			if mapped, err = pgio.Mmap(*artifact); err != nil {
				log.Fatalf("pgserve: %v", err)
			}
			art, artInfo = mapped.A, mapped.Info
			log.Printf("artifact: %s, %d bytes, kinds %v (decode %s)", *artifact, artInfo.Bytes, art.Kinds, mapped.Mode())
		} else {
			if art, artInfo, err = loadArtifact(*artifact); err != nil {
				log.Fatalf("pgserve: %v", err)
			}
			log.Printf("artifact: %s, %d bytes, kinds %v", *artifact, artInfo.Bytes, art.Kinds)
		}
		g = art.G
	default:
		if g, err = loadGraph(*graphFile, *binary, *gen, *scale, *deg, *seed); err != nil {
			log.Fatalf("pgserve: %v", err)
		}
	}

	if g != nil {
		log.Printf("graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	t0 := time.Now()
	var (
		snap *serve.Snapshot
		dyn  *stream.DynamicGraph
	)
	switch {
	case *streaming:
		// Streaming mode: the DynamicGraph owns the sketches and every
		// epoch (including the first) is a Freeze of its state. From an
		// artifact, the decoded sketches resume the stream where the
		// persisted epoch left off — no rebuild.
		cfg := snapCfg
		if art != nil {
			if cfg, err = serve.ConfigFromArtifact(art, snapCfg); err != nil {
				break
			}
			dyn, err = stream.NewWith(art.G, cfg, art.PGs)
		} else {
			dyn, err = stream.New(g, cfg)
		}
		if err != nil {
			break
		}
		if *save != "" {
			// Install before the first Freeze so every epoch, including
			// the boot epoch, is durable.
			dyn.SetPersist(stream.PersistFile(*save))
			log.Printf("pgserve: persisting every frozen epoch to %s", *save)
		}
		if mapped != nil {
			// The DynamicGraph copied everything it needs; the mapping's
			// only remaining referents are art's borrowed arrays, which
			// are not used past this point.
			art, g = nil, nil
			if cerr := mapped.Close(); cerr != nil {
				log.Printf("pgserve: closing boot mapping: %v", cerr)
			}
		}
		var ps stream.PersistStatus
		if snap, ps, err = dyn.FreezePersist(); err == nil && ps.Err != nil {
			// Later epochs tolerate persist failures (they surface in
			// /v1/stats), but a boot epoch that cannot reach its -save
			// path is a misconfiguration: fail fast while the operator
			// is still watching.
			log.Fatalf("pgserve: persisting boot epoch to %s: %v", *save, ps.Err)
		}
	case *useMmap && *artifact != "":
		if snap, err = serve.OpenArtifactMmap(*artifact, snapCfg); err == nil {
			log.Printf("artifact: %s, %d bytes, kinds %v (decode %s, %d bytes mapped)",
				*artifact, snap.Artifact.Bytes, snap.Kinds(), snap.Mode, snap.MappedBytes)
			log.Printf("graph: n=%d m=%d", snap.G.NumVertices(), snap.G.NumEdges())
		}
	case art != nil:
		snap, err = serve.OpenDecoded(art, artInfo, snapCfg)
	default:
		snap, err = serve.Open(g, snapCfg)
	}
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	for name, b := range snap.SketchBytes() {
		log.Printf("snapshot: %s sketches, %d bytes", name, b)
	}
	log.Printf("snapshot: epoch %d ready in %v", snap.Epoch, time.Since(t0).Round(time.Millisecond))
	if *save != "" && !*streaming {
		info, err := saveSnapshot(snap, *save)
		if err != nil {
			log.Fatalf("pgserve: saving artifact: %v", err)
		}
		log.Printf("pgserve: saved artifact %s (%d bytes, %d sections)", *save, info.Bytes, len(info.Sections))
	}

	// Flag semantics: 0 disables; the engine reads 0 as "default" and
	// negative as "off", so translate here.
	cache, delay := *cacheSize, *batchDelay
	if cache == 0 {
		cache = -1
	}
	if delay == 0 {
		delay = -1
	}
	engine := serve.New(snap, serve.Options{
		Workers: *workers, MaxBatch: *maxBatch, MaxDelay: delay, CacheSize: cache,
	})
	defer engine.Close()

	// Observability: everything hangs off the process-wide registry. The
	// engine's metrics are func-backed over the same atomics /v1/stats
	// reads, so the two surfaces always agree; the tracer journals slow
	// requests for GET /v1/trace.
	reg := obs.Default()
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntimeMetrics(reg)
	engine.RegisterMetrics(reg)
	tracer := obs.NewTracer(*slow, obs.DefaultTraceRing)
	if dyn != nil {
		feeder := stream.NewFeeder(dyn, engine)
		feeder.SetTracer(tracer)
		feeder.RegisterMetrics(reg)
		dyn.RegisterMetrics(reg)
		engine.EnableIngest(feeder)
		log.Printf("pgserve: streaming enabled (POST /v1/ingest)")
	}
	log.Printf("pgserve: %s", obs.VersionString("pgserve"))

	mux := http.NewServeMux()
	mux.Handle("/", withTracer(tracer, serve.Handler(engine)))
	mux.Handle("GET /metrics", obs.Handler(reg))
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		total, slowCount := tracer.Totals()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			ThresholdUS float64      `json:"threshold_us"`
			Total       int64        `json:"total"`
			Slow        int64        `json:"slow"`
			Traces      []*obs.Trace `json:"traces"`
		}{
			ThresholdUS: float64(tracer.Threshold()) / float64(time.Microsecond),
			Total:       total,
			Slow:        slowCount,
			Traces:      tracer.Slow(),
		})
	})
	// The pprof handlers are registered explicitly (not via the package's
	// DefaultServeMux side effect) so the serving mux stays the only mux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("pgserve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	log.Printf("pgserve: listening on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pgserve: %v", err)
	}
}

// withTracer installs the slow-request tracer on every request context,
// so the engine's spans (query/cache/batch/eval and the session builds
// underneath) attach to one trace per request.
func withTracer(t *obs.Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r.WithContext(obs.WithTracer(r.Context(), t)))
	})
}

// loadGraph reads the graph file or runs the named generator.
func loadGraph(file string, binary bool, gen string, scale, deg int, seed uint64) (*graph.Graph, error) {
	if file != "" {
		in := os.Stdin
		if file != "-" {
			f, err := os.Open(file)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			in = f
		}
		if binary {
			return graph.ReadBinary(in)
		}
		return graph.ReadEdgeList(in)
	}
	n := 1 << scale
	switch gen {
	case "kron":
		return graph.Kronecker(scale, deg, seed), nil
	case "er":
		return graph.ErdosRenyi(n, n*deg/2, seed), nil
	case "ba":
		return graph.BarabasiAlbert(n, deg/2, seed), nil
	case "community":
		return graph.CommunityGraph(n, n*deg/2, 16, 64, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q (kron|er|ba|community)", gen)
}

// loadArtifact decodes (and CRC-verifies) a binary artifact file.
func loadArtifact(path string) (*pgio.Artifact, *pgio.FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return pgio.DecodeWithInfo(f)
}

// saveSnapshot writes the snapshot as an artifact via temp+rename, so a
// crash mid-save never leaves a torn file at the target path.
func saveSnapshot(s *serve.Snapshot, path string) (*pgio.FileInfo, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pgserve-save-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	info, err := s.Save(tmp)
	if err != nil {
		tmp.Close()
		return nil, err
	}
	// The rename only makes durability claims the data can back.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, err
	}
	return info, nil
}

// parseKinds parses the -kinds list. Empty means "default": BF for a
// cold build (serve.Open's zero-value behavior), every resident kind
// when booting from an artifact.
func parseKinds(s string) ([]core.Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := serve.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
