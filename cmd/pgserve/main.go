// Command pgserve loads (or generates) a graph, builds an immutable
// ProbGraph snapshot, and serves the online query API over HTTP JSON:
//
//	POST /v1/query   {"op":"similarity","u":3,"v":9,"measure":"jaccard"}
//	POST /v1/ingest  {"add":[[1,2]],"del":[[0,7]]}  (with -stream)
//	GET  /v1/stats   snapshot shape, sketch memory, cache/batcher counters
//	GET  /healthz    liveness
//
// Usage:
//
//	pgserve -gen kron -scale 12 -deg 16          # synthetic snapshot
//	pgserve -graph web.el -kinds BF,1H -budget 0.25
//	pgserve -gen kron -scale 12 -stream          # accept live edge batches
//
// With -stream the server owns a stream.DynamicGraph: each /v1/ingest
// batch updates the per-vertex sketches incrementally, freezes a new
// epoch, and hot-swaps it under the live query load (in-flight queries
// finish on their epoch; the result cache invalidates by epoch).
//
// Drive it with pgload, or curl:
//
//	curl -s localhost:8080/v1/query -d '{"op":"topk","u":7,"k":5}'
//	curl -s localhost:8080/v1/ingest -d '{"add":[[3,199],[4,1877]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/serve"
	"probgraph/internal/stream"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		graphFile  = flag.String("graph", "", "edge-list file to serve ('-' = stdin)")
		binary     = flag.Bool("binary", false, "graph file is binary CSR format")
		gen        = flag.String("gen", "kron", "generator when no -graph: kron|er|ba|community")
		scale      = flag.Int("scale", 12, "kron scale (2^scale vertices) / community size log2")
		deg        = flag.Int("deg", 16, "average degree for the generator")
		kinds      = flag.String("kinds", "BF", "comma-separated sketch kinds to build (BF,kH,1H,KMV,HLL)")
		est        = flag.String("est", "auto", "|X∩Y| estimator within the representation: auto | and | l | or | 1hsimple")
		budget     = flag.Float64("budget", 0.25, "storage budget s")
		seed       = flag.Uint64("seed", 42, "sketch/generator seed")
		workers    = flag.Int("workers", 0, "engine workers (0 = all cores)")
		cacheSize  = flag.Int("cache", 1<<16, "result cache entries (0 = disabled)")
		maxBatch   = flag.Int("batch", 64, "max queries coalesced per batch")
		batchDelay = flag.Duration("batchdelay", 200*time.Microsecond, "max wait to fill a batch (0 = no wait)")
		streaming  = flag.Bool("stream", false, "enable /v1/ingest: maintain sketches incrementally and hot-swap epochs")
	)
	flag.Parse()

	g, err := loadGraph(*graphFile, *binary, *gen, *scale, *deg, *seed)
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	kindList, err := parseKinds(*kinds)
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	estimator, err := core.ParseEstimator(*est)
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}

	log.Printf("graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	t0 := time.Now()
	snapCfg := serve.SnapshotConfig{
		Kinds: kindList, Est: estimator, Budget: *budget, Seed: *seed, Workers: *workers,
	}
	var (
		snap *serve.Snapshot
		dyn  *stream.DynamicGraph
	)
	if *streaming {
		// Streaming mode: the DynamicGraph owns the sketches and every
		// epoch (including the first) is a Freeze of its state.
		if dyn, err = stream.New(g, snapCfg); err == nil {
			snap, err = dyn.Freeze()
		}
	} else {
		snap, err = serve.Open(g, snapCfg)
	}
	if err != nil {
		log.Fatalf("pgserve: %v", err)
	}
	for name, b := range snap.SketchBytes() {
		log.Printf("snapshot: %s sketches, %d bytes", name, b)
	}
	log.Printf("snapshot: epoch %d built in %v", snap.Epoch, time.Since(t0).Round(time.Millisecond))

	// Flag semantics: 0 disables; the engine reads 0 as "default" and
	// negative as "off", so translate here.
	cache, delay := *cacheSize, *batchDelay
	if cache == 0 {
		cache = -1
	}
	if delay == 0 {
		delay = -1
	}
	engine := serve.New(snap, serve.Options{
		Workers: *workers, MaxBatch: *maxBatch, MaxDelay: delay, CacheSize: cache,
	})
	defer engine.Close()
	if dyn != nil {
		engine.EnableIngest(stream.NewFeeder(dyn, engine))
		log.Printf("pgserve: streaming enabled (POST /v1/ingest)")
	}

	srv := &http.Server{Addr: *addr, Handler: serve.Handler(engine)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("pgserve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	log.Printf("pgserve: listening on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pgserve: %v", err)
	}
}

// loadGraph reads the graph file or runs the named generator.
func loadGraph(file string, binary bool, gen string, scale, deg int, seed uint64) (*graph.Graph, error) {
	if file != "" {
		in := os.Stdin
		if file != "-" {
			f, err := os.Open(file)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			in = f
		}
		if binary {
			return graph.ReadBinary(in)
		}
		return graph.ReadEdgeList(in)
	}
	n := 1 << scale
	switch gen {
	case "kron":
		return graph.Kronecker(scale, deg, seed), nil
	case "er":
		return graph.ErdosRenyi(n, n*deg/2, seed), nil
	case "ba":
		return graph.BarabasiAlbert(n, deg/2, seed), nil
	case "community":
		return graph.CommunityGraph(n, n*deg/2, 16, 64, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q (kron|er|ba|community)", gen)
}

// parseKinds parses the -kinds list.
func parseKinds(s string) ([]core.Kind, error) {
	var out []core.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := serve.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
