package main

import "testing"

// TestOrderMatchesExperiments pins the invariant behind `-exp all`: the
// presentation order lists every registered experiment exactly once, so
// adding an experiment to one table but not the other fails fast.
func TestOrderMatchesExperiments(t *testing.T) {
	seen := make(map[string]int, len(order))
	for _, name := range order {
		seen[name]++
		if seen[name] > 1 {
			t.Errorf("experiment %q appears %d times in order", name, seen[name])
		}
		if _, ok := experiments[name]; !ok {
			t.Errorf("order lists %q but experiments does not define it", name)
		}
	}
	for name := range experiments {
		if seen[name] == 0 {
			t.Errorf("experiment %q is registered but missing from order (and so from -exp all)", name)
		}
	}
	if len(order) != len(experiments) {
		t.Errorf("order has %d entries, experiments has %d", len(order), len(experiments))
	}
}
