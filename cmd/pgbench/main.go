// Command pgbench regenerates the evaluation artifacts of the ProbGraph
// paper: every figure and table of §VIII has a corresponding experiment
// (see DESIGN.md §4 for the index).
//
// Usage:
//
//	pgbench -exp fig3            # one experiment
//	pgbench -exp all -quick      # everything, small configuration
//	pgbench -list                # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"probgraph/internal/bench"
	"probgraph/internal/obs"
)

// experiments maps experiment names to their drivers.
var experiments = map[string]func(bench.Opts) error{
	"fig3":       func(o bench.Opts) error { _, err := bench.Fig3(o); return err },
	"fig4":       func(o bench.Opts) error { _, err := bench.Fig4(o); return err },
	"fig5":       func(o bench.Opts) error { _, err := bench.Fig5(o); return err },
	"fig6":       func(o bench.Opts) error { _, err := bench.Fig6(o); return err },
	"fig7":       func(o bench.Opts) error { _, err := bench.Fig7(o); return err },
	"fig8strong": func(o bench.Opts) error { _, err := bench.Fig8Strong(o); return err },
	"fig8weak":   func(o bench.Opts) error { _, err := bench.Fig8Weak(o); return err },
	"fig9":       func(o bench.Opts) error { _, err := bench.Fig9(o); return err },
	"table4":     func(o bench.Opts) error { _, err := bench.Table4(o); return err },
	"table5":     func(o bench.Opts) error { _, err := bench.Table5(o); return err },
	"table6":     func(o bench.Opts) error { _, err := bench.Table6(o); return err },
	"table7":     func(o bench.Opts) error { _, err := bench.Table7(o); return err },
	"theory":     bench.TheoryReport,
	"dist":       func(o bench.Opts) error { _, err := bench.DistExperiment(o); return err },
	"distsim":    func(o bench.Opts) error { _, err := bench.DistSimExperiment(o); return err },
	"ablation":   func(o bench.Opts) error { _, err := bench.Ablation(o); return err },
	"linkpred":   func(o bench.Opts) error { _, err := bench.LinkPred(o); return err },
	"sim":        func(o bench.Opts) error { _, err := bench.VertexSim(o); return err },
	"serve":      func(o bench.Opts) error { _, err := bench.ServeExperiment(o); return err },
	"session":    func(o bench.Opts) error { _, err := bench.SessionBench(o); return err },
	"pattern":    func(o bench.Opts) error { _, err := bench.PatternBench(o); return err },
	"stream":     func(o bench.Opts) error { _, err := bench.StreamBench(o); return err },
	"persist":    func(o bench.Opts) error { _, err := bench.PersistBench(o); return err },
	"intersect":  func(o bench.Opts) error { _, err := bench.IntersectBench(o); return err },
}

// order fixes the presentation order for -exp all.
var order = []string{
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8strong", "fig8weak", "fig9",
	"table4", "table5", "table6", "table7", "theory", "dist", "distsim",
	"sim", "linkpred", "ablation", "serve", "session", "pattern", "stream", "persist",
	"intersect",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list)")
		quick    = flag.Bool("quick", false, "small graphs and few repetitions")
		runs     = flag.Int("runs", 0, "timed repetitions per measurement (0 = default)")
		seed     = flag.Uint64("seed", 42, "master random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		jsonPath = flag.String("json", "", "append machine-readable JSON-lines records to this file (e.g. BENCH_session.json)")
		list     = flag.Bool("list", false, "list available experiments")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgbench"))
		return
	}

	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	opts := bench.Opts{
		Quick:   *quick,
		Runs:    *runs,
		Seed:    *seed,
		Workers: *workers,
		Out:     os.Stdout,
	}
	if *jsonPath != "" {
		f, err := os.OpenFile(*jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: opening %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		defer f.Close()
		opts.JSON = f
	}

	run := func(name string) {
		f, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pgbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		if err := f(opts); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*exp)
}
