// Command pgci is the CI perf-regression gate: it compares the
// machine-readable JSONL records pgbench emits (-exp session/-exp
// stream with -json) against a checked-in baseline and fails when any
// matching measurement slowed down by more than the tolerance factor.
//
// Usage:
//
//	pgci -baseline BENCH_baseline.json BENCH_session.json BENCH_stream.json
//	pgci -baseline BENCH_baseline.json -tolerance 2.5 BENCH_session.json
//
// The tolerance is deliberately generous (default 2.5×): CI runners
// differ wildly from the machine that recorded the baseline, so the
// gate exists to catch order-of-magnitude regressions (an accidental
// O(n²) path, a lost cache), not single-digit drift. Measurements in
// the candidate but absent from the baseline pass with a "new" note;
// baseline entries with no candidate measurement are ignored (each
// experiment ships its own candidate file).
//
// Exit status: 0 clean, 1 regression, 2 usage or IO error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"probgraph/internal/obs"
)

// record mirrors bench.BenchRecord's JSONL shape.
type record struct {
	Experiment string  `json:"experiment"`
	Config     string  `json:"config"`
	Value      float64 `json:"value"`
	NsPerOp    int64   `json:"ns_per_op"`
}

// key identifies one tracked measurement.
func (r record) key() string { return r.Experiment + "|" + r.Config }

// loadRecords parses JSON-lines records, keeping per key the fastest
// (minimum) ns_per_op — repeated runs appended to one file gate on
// their best, which is the least noisy summary of a timing.
func loadRecords(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Experiment == "" || rec.NsPerOp <= 0 {
			continue // not a timing record
		}
		k := rec.key()
		if old, ok := out[k]; !ok || rec.NsPerOp < old {
			out[k] = rec.NsPerOp
		}
	}
	return out, sc.Err()
}

// verdict is one compared measurement.
type verdict struct {
	Key        string
	Base, Cand int64
	Ratio      float64
	Regressed  bool
	New        bool
}

// compare gates every candidate measurement against the baseline.
func compare(baseline, cand map[string]int64, tolerance float64) []verdict {
	keys := make([]string, 0, len(cand))
	for k := range cand {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]verdict, 0, len(keys))
	for _, k := range keys {
		v := verdict{Key: k, Cand: cand[k]}
		if base, ok := baseline[k]; ok {
			v.Base = base
			v.Ratio = float64(v.Cand) / float64(base)
			v.Regressed = v.Ratio > tolerance
		} else {
			v.New = true
		}
		out = append(out, v)
	}
	return out
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSONL file")
		tolerance    = flag.Float64("tolerance", 2.5, "max allowed candidate/baseline ns_per_op ratio")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgci"))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pgci: no candidate files given")
		os.Exit(2)
	}
	if *tolerance <= 1 {
		fmt.Fprintf(os.Stderr, "pgci: tolerance %v must exceed 1\n", *tolerance)
		os.Exit(2)
	}

	baseline, err := loadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgci: baseline %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	cand := make(map[string]int64)
	for _, path := range flag.Args() {
		m, err := loadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgci: %s: %v\n", path, err)
			os.Exit(2)
		}
		for k, ns := range m {
			if old, ok := cand[k]; !ok || ns < old {
				cand[k] = ns
			}
		}
	}
	if len(cand) == 0 {
		fmt.Fprintln(os.Stderr, "pgci: candidate files contain no timing records")
		os.Exit(2)
	}

	verdicts := compare(baseline, cand, *tolerance)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "measurement\tbaseline ns\tcandidate ns\tratio\tstatus")
	regressions := 0
	for _, v := range verdicts {
		status := "ok"
		switch {
		case v.New:
			status = "new (no baseline)"
			fmt.Fprintf(tw, "%s\t-\t%d\t-\t%s\n", v.Key, v.Cand, status)
			continue
		case v.Regressed:
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\t%s\n", v.Key, v.Base, v.Cand, v.Ratio, status)
	}
	tw.Flush()
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "pgci: %d measurement(s) regressed beyond %.2gx\n", regressions, *tolerance)
		os.Exit(1)
	}
	fmt.Printf("pgci: %d measurement(s) within %.2gx of baseline\n", len(verdicts), *tolerance)
}

func loadFile(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return loadRecords(f)
}
