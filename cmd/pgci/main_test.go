package main

import (
	"strings"
	"testing"
)

func TestLoadRecordsMinimumWins(t *testing.T) {
	in := `{"experiment":"session/tc","config":"BF","value":1,"ns_per_op":500}
{"experiment":"session/tc","config":"BF","value":1,"ns_per_op":300}

{"experiment":"session/tc","config":"exact","value":1,"ns_per_op":900}
{"experiment":"stream/ingest","config":"BF","value":1,"ns_per_op":0}
`
	m, err := loadRecords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := m["session/tc|BF"]; got != 300 {
		t.Fatalf("min ns for repeated key = %d, want 300", got)
	}
	if got := m["session/tc|exact"]; got != 900 {
		t.Fatalf("exact ns = %d, want 900", got)
	}
	if _, ok := m["stream/ingest|BF"]; ok {
		t.Fatal("zero-ns records must be skipped, not gated")
	}
}

func TestLoadRecordsRejectsGarbage(t *testing.T) {
	if _, err := loadRecords(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]int64{
		"session/tc|BF": 100,
		"session/tc|kH": 100,
		"unused|x":      1,
	}
	cand := map[string]int64{
		"session/tc|BF":    240, // 2.4x: within 2.5x
		"session/tc|kH":    260, // 2.6x: regression
		"stream/ingest|BF": 50,  // new
	}
	vs := compare(baseline, cand, 2.5)
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts, want 3 (baseline-only keys are ignored)", len(vs))
	}
	byKey := map[string]verdict{}
	for _, v := range vs {
		byKey[v.Key] = v
	}
	if v := byKey["session/tc|BF"]; v.Regressed || v.New {
		t.Fatalf("2.4x within tolerance flagged: %+v", v)
	}
	if v := byKey["session/tc|kH"]; !v.Regressed {
		t.Fatalf("2.6x not flagged: %+v", v)
	}
	if v := byKey["stream/ingest|BF"]; !v.New || v.Regressed {
		t.Fatalf("missing-baseline entry must be new, not regressed: %+v", v)
	}
}
