// Command pgload is the load generator for pgserve: a closed- or
// open-loop driver in the falkordb-benchmark-go tradition that reports
// throughput, an HDR-style latency profile (p50/p90/p99/p99.9), and the
// server-side cache hit rate over the run.
//
// Usage:
//
//	pgload -addr http://127.0.0.1:8080 -duration 10s            # closed loop
//	pgload -qps 5000 -workers 16 -mix similarity:8,topk:1       # open loop
//	pgload -duration 5s -ingest-qps 4 -ingest-batch 256         # mixed churn
//	pgload -targets http://r1:8080,http://r2:8080 -duration 10s # fleet round-robin
//	pgload -pattern-weight 1 -pattern diamond -duration 5s      # add pattern queries

// With -targets the query stream round-robins across several servers or
// pgrouters; the final summary breaks requests and errors down per
// target (stats and ingest go to the first target).
//
// With -ingest-qps > 0 a concurrent ingest loop POSTs random edge
// batches to /v1/ingest (against a pgserve started with -stream) while
// the query workers run — measuring query latency under epoch churn.
//
// With -interval > 0 (default 2s) a windowed progress line prints per
// interval: that window's query count, rate, and p50/p99/max computed
// from histogram snapshot deltas — so a mid-run latency shift is
// visible as it happens, not averaged into the final percentiles.
//
// With -check the exit status is non-zero when any query or ingest
// errored or no queries completed — the CI smoke contract.
package main

import (
	"flag"
	"fmt"
	"log"
	mrand "math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		targets  = flag.String("targets", "", "comma-separated server/router base URLs; queries round-robin across them (overrides -addr; stats come from the first)")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		qps      = flag.Float64("qps", 0, "open-loop target rate (0 = closed loop)")
		workers  = flag.Int("workers", 8, "concurrent client connections")
		mixFlag  = flag.String("mix", "", "op weights, e.g. similarity:6,localtc:2,neighbors:1,topk:1")
		measure  = flag.String("measure", "jaccard", "similarity measure for similarity/topk")
		topk     = flag.Int("topk", 10, "k for generated topk queries")
		patternW = flag.Float64("pattern-weight", 0, "extra mix weight for whole-graph pattern queries (added on top of -mix)")
		patternP = flag.String("pattern", "triangle", "pattern spec for generated pattern queries (builtin name or edge list)")
		zipf     = flag.Float64("zipf", 1.2, "vertex skew exponent (<=1 = uniform picks)")
		seed     = flag.Uint64("seed", 42, "query-stream seed")
		check    = flag.Bool("check", false, "exit non-zero on errors or zero throughput")

		ingestQPS   = flag.Float64("ingest-qps", 0, "edge batches per second to POST to /v1/ingest (0 = no ingest)")
		ingestBatch = flag.Int("ingest-batch", 128, "edges per ingest batch")
		ingestDel   = flag.Float64("ingest-del", 0, "fraction of each batch sent as deletions of earlier inserts")
		interval    = flag.Duration("interval", 2*time.Second, "print a windowed progress line (count, q/s, window p50/p99/max) every interval; 0 disables")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgload"))
		return
	}

	// One base URL per target; -targets spreads the query stream over a
	// fleet (e.g. several pgrouters, or routers beside a pgserve for an
	// apples-to-apples run). Stats and ingest go to the first target.
	rawTargets := []string{*addr}
	if *targets != "" {
		rawTargets = strings.Split(*targets, ",")
	}
	bases := make([]string, 0, len(rawTargets))
	for _, t := range rawTargets {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		bases = append(bases, strings.TrimRight(t, "/"))
	}
	if len(bases) == 0 {
		log.Fatal("pgload: no targets")
	}
	base := bases[0]

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	before, err := serve.FetchStats(client, base)
	if err != nil {
		log.Fatalf("pgload: server not reachable at %s: %v", base, err)
	}
	mix, err := serve.ParseMix(*mixFlag)
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}
	if *patternW > 0 {
		// -pattern-weight rides on top of whatever -mix says, so the
		// default mix gains pattern traffic without being retyped.
		mix[serve.OpPattern] += *patternW
	}
	m, err := serve.ParseMeasure(*measure)
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}

	mode := "closed-loop"
	if *qps > 0 {
		mode = fmt.Sprintf("open-loop @ %.0f q/s", *qps)
	}
	if *ingestQPS > 0 {
		mode += fmt.Sprintf(" + ingest @ %.1f batches/s × %d edges", *ingestQPS, *ingestBatch)
	}
	targetNote := base
	if len(bases) > 1 {
		targetNote = fmt.Sprintf("%d targets (stats from %s)", len(bases), base)
	}
	log.Printf("pgload: %s, %d workers, %v against %s (n=%d, epoch %d)",
		mode, *workers, *duration, targetNote, before.Vertices, before.Epoch)

	// The ingest loop runs beside the query workers: reproducible random
	// edge batches at a fixed rate, each advancing the served epoch.
	var ingestWG sync.WaitGroup
	var ingested, ingestBatches, ingestErrs int
	if *ingestQPS > 0 {
		ingestWG.Add(1)
		go func() {
			defer ingestWG.Done()
			doIngest := serve.HTTPIngestDoer(client, base)
			rng := mrand.New(mrand.NewSource(int64(*seed) ^ 0x5ca1ab1e))
			n := uint32(before.Vertices)
			interval := time.Duration(float64(time.Second) / *ingestQPS)
			deadline := time.Now().Add(*duration)
			next := time.Now()
			var inserted []graph.Edge
			for time.Now().Before(deadline) {
				add := make([]graph.Edge, *ingestBatch)
				for i := range add {
					add[i] = graph.Edge{U: rng.Uint32() % n, V: rng.Uint32() % n}
				}
				var del []graph.Edge
				if k := int(*ingestDel * float64(*ingestBatch)); k > 0 && len(inserted) > 0 {
					for i := 0; i < k; i++ {
						del = append(del, inserted[rng.Intn(len(inserted))])
					}
				}
				res, err := doIngest(add, del)
				ingestBatches++
				if err != nil {
					ingestErrs++
					log.Printf("pgload: ingest: %v", err)
				} else {
					ingested += res.Added
					inserted = append(inserted, add...)
					if len(inserted) > 1<<16 {
						inserted = inserted[len(inserted)-1<<16:]
					}
				}
				// Ticker-style pacing: the next send time advances by the
				// interval from the schedule, not from the response, so the
				// achieved rate tracks -ingest-qps even when apply+freeze+swap
				// latency eats into the interval.
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}()
	}

	opts := serve.LoadOpts{
		Workers:  *workers,
		Duration: *duration,
		QPS:      *qps,
		Mix:      mix,
		Measure:  m,
		TopK:     *topk,
		Pattern:  *patternP,
		Vertices: before.Vertices,
		Zipf:     *zipf,
		Seed:     *seed,
	}
	if *interval > 0 {
		// Windowed reporting: each line is that interval alone (histogram
		// snapshot deltas), so a latency regression mid-run is visible as
		// it happens instead of being averaged away by the lifetime
		// percentiles printed at the end.
		opts.Interval = *interval
		opts.OnWindow = func(w serve.LoadWindow) {
			if w.Queries == 0 && w.Errors == 0 {
				return
			}
			fmt.Println(w)
		}
	}
	// Round-robin dispatch over the target list with per-target counts,
	// so a fleet run shows which target ate the errors.
	doers := make([]func(serve.Query) (serve.Result, error), len(bases))
	for i, b := range bases {
		doers[i] = serve.HTTPDoer(client, b)
	}
	perTarget := make([]struct{ reqs, errs atomic.Int64 }, len(bases))
	var next atomic.Int64
	doer := func(q serve.Query) (serve.Result, error) {
		i := int(next.Add(1)-1) % len(bases)
		res, err := doers[i](q)
		perTarget[i].reqs.Add(1)
		if err != nil {
			perTarget[i].errs.Add(1)
		}
		return res, err
	}
	rep, err := serve.RunLoad(opts, doer)
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}

	ingestWG.Wait()
	fmt.Println(rep)
	if len(bases) > 1 {
		for i, b := range bases {
			fmt.Printf("target %d: %s — %d queries, %d errors\n",
				i, b, perTarget[i].reqs.Load(), perTarget[i].errs.Load())
		}
	}
	if *ingestQPS > 0 {
		fmt.Printf("ingest: %d batches (%d edges applied), %d errors\n",
			ingestBatches, ingested, ingestErrs)
	}
	if after, err := serve.FetchStats(client, base); err == nil {
		if *ingestQPS > 0 {
			fmt.Printf("server: epoch %d → %d (%d hot-swaps during the run)\n",
				before.Epoch, after.Epoch, after.Swaps-before.Swaps)
		}
		hits := after.Cache.Hits - before.Cache.Hits
		misses := after.Cache.Misses - before.Cache.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		batches := after.Batch.Batches - before.Batch.Batches
		batched := after.Batch.Queries - before.Batch.Queries
		meanBatch := 0.0
		if batches > 0 {
			meanBatch = float64(batched) / float64(batches)
		}
		fmt.Printf("server: cache %.1f%% hits (%d/%d), %d batches (avg %.1f q/batch, %d coalesced)\n",
			100*hitRate, hits, hits+misses, batches, meanBatch,
			after.Batch.Coalesced-before.Batch.Coalesced)
	}

	if *check && (rep.Errors > 0 || rep.Queries == 0 || ingestErrs > 0) {
		fmt.Fprintf(os.Stderr, "pgload: check failed: %d query errors, %d queries, %d ingest errors\n",
			rep.Errors, rep.Queries, ingestErrs)
		os.Exit(1)
	}
}
