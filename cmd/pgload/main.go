// Command pgload is the load generator for pgserve: a closed- or
// open-loop driver in the falkordb-benchmark-go tradition that reports
// throughput, an HDR-style latency profile (p50/p90/p99/p99.9), and the
// server-side cache hit rate over the run.
//
// Usage:
//
//	pgload -addr http://127.0.0.1:8080 -duration 10s            # closed loop
//	pgload -qps 5000 -workers 16 -mix similarity:8,topk:1       # open loop
//
// With -check the exit status is non-zero when any query errored or
// none completed — the CI smoke contract.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"probgraph/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		qps      = flag.Float64("qps", 0, "open-loop target rate (0 = closed loop)")
		workers  = flag.Int("workers", 8, "concurrent client connections")
		mixFlag  = flag.String("mix", "", "op weights, e.g. similarity:6,localtc:2,neighbors:1,topk:1")
		measure  = flag.String("measure", "jaccard", "similarity measure for similarity/topk")
		topk     = flag.Int("topk", 10, "k for generated topk queries")
		zipf     = flag.Float64("zipf", 1.2, "vertex skew exponent (<=1 = uniform picks)")
		seed     = flag.Uint64("seed", 42, "query-stream seed")
		check    = flag.Bool("check", false, "exit non-zero on errors or zero throughput")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	before, err := serve.FetchStats(client, base)
	if err != nil {
		log.Fatalf("pgload: server not reachable at %s: %v", base, err)
	}
	mix, err := serve.ParseMix(*mixFlag)
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}
	m, err := serve.ParseMeasure(*measure)
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}

	mode := "closed-loop"
	if *qps > 0 {
		mode = fmt.Sprintf("open-loop @ %.0f q/s", *qps)
	}
	log.Printf("pgload: %s, %d workers, %v against %s (n=%d, epoch %d)",
		mode, *workers, *duration, base, before.Vertices, before.Epoch)

	rep, err := serve.RunLoad(serve.LoadOpts{
		Workers:  *workers,
		Duration: *duration,
		QPS:      *qps,
		Mix:      mix,
		Measure:  m,
		TopK:     *topk,
		Vertices: before.Vertices,
		Zipf:     *zipf,
		Seed:     *seed,
	}, serve.HTTPDoer(client, base))
	if err != nil {
		log.Fatalf("pgload: %v", err)
	}

	fmt.Println(rep)
	if after, err := serve.FetchStats(client, base); err == nil {
		hits := after.Cache.Hits - before.Cache.Hits
		misses := after.Cache.Misses - before.Cache.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		batches := after.Batch.Batches - before.Batch.Batches
		batched := after.Batch.Queries - before.Batch.Queries
		meanBatch := 0.0
		if batches > 0 {
			meanBatch = float64(batched) / float64(batches)
		}
		fmt.Printf("server: cache %.1f%% hits (%d/%d), %d batches (avg %.1f q/batch, %d coalesced)\n",
			100*hitRate, hits, hits+misses, batches, meanBatch,
			after.Batch.Coalesced-before.Batch.Coalesced)
	}

	if *check && (rep.Errors > 0 || rep.Queries == 0) {
		fmt.Fprintf(os.Stderr, "pgload: check failed: %d errors, %d queries\n", rep.Errors, rep.Queries)
		os.Exit(1)
	}
}
