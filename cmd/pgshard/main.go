// Command pgshard is one worker of a sharded ProbGraph serving cluster:
// it loads a full replica of a binary artifact (pgpack / pgserve -save
// output), takes responsibility for one block of the vertex partition,
// and serves the framed TCP protocol of internal/cluster — point
// queries on its embedded engine, row fetches for its peers' kernel
// partials, block partials for the router's scatter-gather, and
// hot-swap onto a new artifact during a rolling roll.
//
// Usage:
//
//	pgshard -artifact web.pg -shard 0/3 \
//	    -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// The -peers list names every shard's address in index order (its own
// entry included); -shard i/n must agree with the list's length, and the
// fronting pgrouter validates both against its own configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probgraph/internal/cluster"
	"probgraph/internal/core"
	"probgraph/internal/obs"
	"probgraph/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9000", "listen address for the shard RPC protocol")
		artifact  = flag.String("artifact", "", "binary artifact (.pg) to serve (required)")
		shard     = flag.String("shard", "0/1", "this shard's position as index/count, e.g. 1/3")
		peers     = flag.String("peers", "", "comma-separated shard addresses in index order (default: -addr alone)")
		workers   = flag.Int("workers", 1, "engine workers; 1 keeps answers bit-deterministic across replicas")
		kinds     = flag.String("kinds", "", "comma-separated sketch kinds to load (default: every resident kind)")
		est       = flag.String("est", "auto", "|X∩Y| estimator within the representation: auto | and | l | or | 1hsimple")
		cacheSize = flag.Int("cache", 1<<16, "engine result cache entries (0 = disabled)")
		useMmap   = flag.Bool("mmap", false, "open artifacts zero-copy via mmap; replicas of the same file share page-cache pages")
		timeout   = flag.Duration("query-timeout", 30*time.Second, "per point query evaluation budget")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgshard"))
		return
	}
	if *artifact == "" {
		log.Fatal("pgshard: -artifact is required (pack one with pgpack)")
	}

	index, count, err := parseShard(*shard)
	if err != nil {
		log.Fatalf("pgshard: %v", err)
	}
	peerList := []string{*addr}
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
	}
	kindList, err := parseKinds(*kinds)
	if err != nil {
		log.Fatalf("pgshard: %v", err)
	}
	estimator, err := core.ParseEstimator(*est)
	if err != nil {
		log.Fatalf("pgshard: %v", err)
	}
	cache := *cacheSize
	if cache == 0 {
		cache = -1
	}

	t0 := time.Now()
	s, err := cluster.NewShard(cluster.ShardConfig{
		Index: index, Shards: count, Peers: peerList,
		Workers: *workers, Kinds: kindList, Est: estimator,
		CacheSize: cache, QueryTimeout: *timeout, Mmap: *useMmap,
	}, *artifact)
	if err != nil {
		log.Fatalf("pgshard: %v", err)
	}
	lo, hi := s.Block()
	log.Printf("pgshard: %s", obs.VersionString("pgshard"))
	log.Printf("pgshard: shard %d/%d ready in %v, owns [%d,%d) of %s",
		index, count, time.Since(t0).Round(time.Millisecond), lo, hi, *artifact)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pgshard: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("pgshard: shutting down")
		s.Close()
	}()

	log.Printf("pgshard: listening on %s", *addr)
	if err := s.Serve(ln); err != nil {
		log.Fatalf("pgshard: %v", err)
	}
}

// parseShard parses "index/count".
func parseShard(s string) (index, count int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &count); err != nil {
		return 0, 0, fmt.Errorf("-shard %q is not index/count (e.g. 1/3)", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", s, count)
	}
	return index, count, nil
}

// parseKinds parses the -kinds list; empty selects every resident kind.
func parseKinds(s string) ([]core.Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := serve.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
