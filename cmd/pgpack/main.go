// Command pgpack packs a graph into a ProbGraph binary artifact (.pg):
// the CSR, its degree orientation, and one sketch set per requested
// kind, in the versioned checksummed format of internal/pgio (see
// docs/FORMAT.md). A packed artifact is the warm-start input of
// pgserve -artifact: booting from one skips edge-list parsing,
// re-orientation, and every sketch build.
//
// Usage:
//
//	pgpack -graph web.el -kinds BF,1H -budget 0.25 -o web.pg
//	pggen -model kron -scale 14 | pgpack -graph - -o kron14.pg
//	pgpack -info web.pg          # header-only: layout, offsets, padding
//	pgpack -info web.pg -verify  # full decode: payload CRCs + content summary
//	pgpack -upgrade old.pg       # rewrite v1 as v2 in place (temp+rename)
//
// After packing (and in -info mode) pgpack prints the section table:
// per-section payload bytes, CRC32-C, file offset, and alignment
// padding, pginfo-style. -info reads only the header, the section
// table, and two name bytes per sketch section — a few hundred bytes of
// IO however large the artifact — so it is safe to point at a
// multi-gigabyte file on cold storage; add -verify to stream the whole
// file through the checksummed decoder.
//
// -upgrade rewrites a v1 artifact in the 64-byte-aligned v2 layout that
// zero-copy serving (pgserve -mmap) requires, atomically: the new file
// is written beside the target and renamed over it, so a crash mid-
// upgrade never leaves a torn artifact. The payload bits are unchanged
// — only alignment padding is inserted — and -o selects a different
// output path when the original should be kept.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file to pack ('-' = stdin)")
		binary    = flag.Bool("binary", false, "graph file is binary CSR format")
		kinds     = flag.String("kinds", "BF", "comma-separated sketch kinds to pack (BF,kH,1H,KMV,HLL)")
		est       = flag.String("est", "auto", "|X∩Y| estimator recorded in the artifact")
		budget    = flag.Float64("budget", 0.25, "storage budget s")
		seed      = flag.Uint64("seed", 42, "sketch seed")
		workers   = flag.Int("workers", 0, "build workers (0 = all cores)")
		out       = flag.String("o", "", "output artifact file (required unless -info/-upgrade)")
		info      = flag.String("info", "", "print an artifact's section layout (header-only IO) instead of packing")
		verify    = flag.Bool("verify", false, "with -info: fully decode, verifying every payload CRC")
		upgrade   = flag.String("upgrade", "", "rewrite an artifact in the aligned v2 format (in place, or to -o)")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgpack"))
		return
	}

	if *info != "" {
		if err := printInfo(*info, *verify); err != nil {
			fatal(err)
		}
		return
	}
	if *upgrade != "" {
		target := *out
		if target == "" {
			target = *upgrade
		}
		if err := upgradeArtifact(*upgrade, target); err != nil {
			fatal(err)
		}
		return
	}
	if *graphFile == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: pgpack -graph <file|-> -o <out.pg> [-kinds BF,1H] [-budget 0.25] [-seed 42]")
		fmt.Fprintln(os.Stderr, "       pgpack -info <file.pg> [-verify]")
		fmt.Fprintln(os.Stderr, "       pgpack -upgrade <file.pg> [-o <out.pg>]")
		os.Exit(2)
	}

	g, err := loadGraph(*graphFile, *binary)
	if err != nil {
		fatal(err)
	}
	kindList, err := parseKinds(*kinds)
	if err != nil {
		fatal(err)
	}
	estimator, err := core.ParseEstimator(*est)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph           n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// Build through serve.Open so the packed state is exactly what a
	// warm-started server would otherwise build for itself.
	snap, err := serve.Open(g, serve.SnapshotConfig{
		Kinds: kindList, Est: estimator, Budget: *budget, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	fi, err := snap.Save(f)
	if err != nil {
		f.Close()
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("artifact        %s\n", *out)
	printSections(fi)
}

// printInfo prints an artifact's structure. The default path is
// header-only (pgio.ReadInfo): the section table comes from a few
// hundred bytes of IO and no payload is read or CRC-checked. With
// verify the whole file streams through the checksummed decoder and the
// content summary (graph shape, resident sketch configs) is printed
// too.
func printInfo(path string, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("artifact        %s\n", path)
	if !verify {
		fi, err := pgio.ReadInfo(f)
		if err != nil {
			return err
		}
		printSections(fi)
		return nil
	}
	a, fi, err := pgio.DecodeWithInfo(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph           n=%d m=%d\n", a.G.NumVertices(), a.G.NumEdges())
	if a.O != nil {
		fmt.Printf("oriented        yes\n")
	}
	for _, k := range a.Kinds {
		fmt.Printf("sketches        %v: %d bytes resident (s=%.2f, seed %d)\n",
			k, a.PGs[k].MemoryBytes(), a.PGs[k].Cfg.Budget, a.PGs[k].Cfg.Seed)
	}
	printSections(fi)
	return nil
}

// printSections renders the section table pginfo-style, including each
// payload's file offset and the alignment padding that precedes it (v2
// offsets are PayloadAlign-multiples; v1 reports offset 0 and no
// padding when the summary comes from the encoder, which predates the
// aligned layout).
func printSections(fi *pgio.FileInfo) {
	fmt.Printf("format version  %d\n", fi.Version)
	fmt.Printf("file size       %d bytes\n", fi.Bytes)
	fmt.Println("sections:")
	for _, s := range fi.Sections {
		align := "-"
		if s.Offset%pgio.PayloadAlign == 0 && s.Offset > 0 {
			align = fmt.Sprintf("%d-aligned", pgio.PayloadAlign)
		}
		fmt.Printf("  %-10s %12d bytes  crc32c %08x  offset %10d  pad %4d  %s\n",
			s.Name, s.Bytes, s.CRC, s.Offset, s.Padding, align)
	}
}

// upgradeArtifact rewrites src in the current (v2, aligned) format at
// dst — atomically, via a temp file in dst's directory renamed over the
// target, so an interrupted upgrade never leaves a torn file. The
// sketch and graph payload bits are preserved exactly; only the layout
// (alignment padding, version stamp) changes.
func upgradeArtifact(src, dst string) error {
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	a, old, err := pgio.DecodeWithInfo(f)
	f.Close()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".pgpack-upgrade-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	fi, err := pgio.Encode(tmp, a)
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return err
	}
	fmt.Printf("upgraded        %s (v%d, %d bytes) -> %s (v%d, %d bytes)\n",
		src, old.Version, old.Bytes, dst, fi.Version, fi.Bytes)
	printSections(fi)
	return nil
}

func loadGraph(file string, binary bool) (*graph.Graph, error) {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	if binary {
		return graph.ReadBinary(in)
	}
	return graph.ReadEdgeList(in)
}

func parseKinds(s string) ([]core.Kind, error) {
	var out []core.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := core.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgpack:", err)
	os.Exit(1)
}
