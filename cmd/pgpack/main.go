// Command pgpack packs a graph into a ProbGraph binary artifact (.pg):
// the CSR, its degree orientation, and one sketch set per requested
// kind, in the versioned checksummed format of internal/pgio (see
// docs/FORMAT.md). A packed artifact is the warm-start input of
// pgserve -artifact: booting from one skips edge-list parsing,
// re-orientation, and every sketch build.
//
// Usage:
//
//	pgpack -graph web.el -kinds BF,1H -budget 0.25 -o web.pg
//	pggen -model kron -scale 14 | pgpack -graph - -o kron14.pg
//	pgpack -info web.pg          # decode, verify CRCs, print sections
//
// After packing (and in -info mode) pgpack prints the section table:
// per-section payload bytes and CRC32-C, pginfo-style.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file to pack ('-' = stdin)")
		binary    = flag.Bool("binary", false, "graph file is binary CSR format")
		kinds     = flag.String("kinds", "BF", "comma-separated sketch kinds to pack (BF,kH,1H,KMV,HLL)")
		est       = flag.String("est", "auto", "|X∩Y| estimator recorded in the artifact")
		budget    = flag.Float64("budget", 0.25, "storage budget s")
		seed      = flag.Uint64("seed", 42, "sketch seed")
		workers   = flag.Int("workers", 0, "build workers (0 = all cores)")
		out       = flag.String("o", "", "output artifact file (required unless -info)")
		info      = flag.String("info", "", "decode an existing artifact and print its section table instead of packing")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("pgpack"))
		return
	}

	if *info != "" {
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
		return
	}
	if *graphFile == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: pgpack -graph <file|-> -o <out.pg> [-kinds BF,1H] [-budget 0.25] [-seed 42]")
		fmt.Fprintln(os.Stderr, "       pgpack -info <file.pg>")
		os.Exit(2)
	}

	g, err := loadGraph(*graphFile, *binary)
	if err != nil {
		fatal(err)
	}
	kindList, err := parseKinds(*kinds)
	if err != nil {
		fatal(err)
	}
	estimator, err := core.ParseEstimator(*est)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph           n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// Build through serve.Open so the packed state is exactly what a
	// warm-started server would otherwise build for itself.
	snap, err := serve.Open(g, serve.SnapshotConfig{
		Kinds: kindList, Est: estimator, Budget: *budget, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	fi, err := snap.Save(f)
	if err != nil {
		f.Close()
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("artifact        %s\n", *out)
	printSections(fi)
}

// printInfo decodes (and thereby CRC-verifies) an artifact and prints
// its structure.
func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, fi, err := pgio.DecodeWithInfo(f)
	if err != nil {
		return err
	}
	fmt.Printf("artifact        %s\n", path)
	fmt.Printf("graph           n=%d m=%d\n", a.G.NumVertices(), a.G.NumEdges())
	if a.O != nil {
		fmt.Printf("oriented        yes\n")
	}
	for _, k := range a.Kinds {
		fmt.Printf("sketches        %v: %d bytes resident (s=%.2f, seed %d)\n",
			k, a.PGs[k].MemoryBytes(), a.PGs[k].Cfg.Budget, a.PGs[k].Cfg.Seed)
	}
	printSections(fi)
	return nil
}

// printSections renders the section table pginfo-style.
func printSections(fi *pgio.FileInfo) {
	fmt.Printf("format version  %d\n", fi.Version)
	fmt.Printf("file size       %d bytes\n", fi.Bytes)
	fmt.Println("sections:")
	for _, s := range fi.Sections {
		fmt.Printf("  %-10s %12d bytes  crc32c %08x\n", s.Name, s.Bytes, s.CRC)
	}
}

func loadGraph(file string, binary bool) (*graph.Graph, error) {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	if binary {
		return graph.ReadBinary(in)
	}
	return graph.ReadEdgeList(in)
}

func parseKinds(s string) ([]core.Kind, error) {
	var out []core.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := core.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgpack:", err)
	os.Exit(1)
}
