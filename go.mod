module probgraph

go 1.24
