module probgraph

go 1.23
