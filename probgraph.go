// Package probgraph is a from-scratch Go implementation of ProbGraph
// (Besta et al., "ProbGraph: High-Performance and High-Accuracy Graph
// Mining with Probabilistic Set Representations", SC 2022): a graph
// representation that replaces vertex neighborhoods with small,
// fixed-size probabilistic set sketches — Bloom filters, two MinHash
// variants, and K-Minimum-Values — and replaces the dominant graph-mining
// kernel |N_u ∩ N_v| with fast estimators over those sketches.
//
// The package exposes the full system: CSR graphs with generators and IO,
// the ProbGraph representation with its storage-budget parameterization,
// exact tuned baselines and PG-enhanced versions of Triangle Counting,
// 4-Clique Counting, Vertex Similarity, Jarvis–Patrick Clustering and
// Link Prediction, plus the statistical concentration bounds of the
// paper's theory as executable functions.
//
// Quick start (the Session API — see session.go):
//
//	g := probgraph.Kronecker(12, 16, 42)
//	sess, err := probgraph.NewSession(g, probgraph.WithBudget(0.25), probgraph.WithSeed(42))
//	if err != nil { ... }
//	approx, err := sess.Run(ctx, probgraph.TC{Mode: probgraph.Sketched})
//	exact, err := sess.Run(ctx, probgraph.TC{Mode: probgraph.Exact})
//
// The flat per-kernel functions below predate the Session API; they are
// kept as thin wrappers (sharing each graph's default Session's cached
// state where it applies) and will not grow new features. New
// code should construct a Session: it caches orientations and sketches,
// threads context cancellation through every parallel loop, reports
// misconfiguration as errors instead of panics, and returns typed
// results carrying the paper's error bounds and timings.
package probgraph

import (
	"io"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/estimator"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// Graph is an undirected simple graph in CSR form (see NewGraph and the
// generators).
type Graph = graph.Graph

// Edge is an undirected edge with U < V after normalization.
type Edge = graph.Edge

// Oriented is the degree-ordered orientation used by the counting
// algorithms; obtain one with Orient.
type Oriented = graph.Oriented

// NewGraph builds a graph on n vertices from an edge list; self loops are
// dropped and duplicate edges merged.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// Orient computes the degree-ordered DAG orientation (N+ adjacency),
// cached on the graph's default Session: repeated calls on the same
// graph return the same orientation without recomputing it.
func Orient(g *Graph, workers int) *Oriented { return orientedFor(g, OrientDegree, workers) }

// OrientByDegeneracy computes the degeneracy (k-core peeling) orientation,
// which bounds every oriented out-degree by the graph's degeneracy — the
// ordering the clique-counting literature cited by the paper uses. Like
// Orient, the result is cached on the graph's default Session.
func OrientByDegeneracy(g *Graph, workers int) *Oriented {
	return orientedFor(g, OrientDegeneracy, workers)
}

// KCore returns the per-vertex core numbers and the graph's degeneracy.
func KCore(g *Graph) (core []int32, degeneracy int32) { return g.KCore() }

// Generators (see the respective internal documentation for semantics).
var (
	// Kronecker generates a power-law R-MAT graph with 2^scale vertices.
	Kronecker = graph.Kronecker
	// ErdosRenyi generates G(n, m).
	ErdosRenyi = graph.ErdosRenyi
	// BarabasiAlbert generates a preferential-attachment graph.
	BarabasiAlbert = graph.BarabasiAlbert
	// HolmeKim generates a clustered power-law graph (preferential
	// attachment with triad formation).
	HolmeKim = graph.HolmeKim
	// PlantedPartition generates a community-structured graph.
	PlantedPartition = graph.PlantedPartition
	// CommunityGraph generates a modular graph with dense variable-size
	// communities (the bio/chem dataset stand-in).
	CommunityGraph = graph.CommunityGraph
	// Complete returns K_n.
	Complete = graph.Complete
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#'/'%' comments).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes the graph as an edge list with a "# n m" header.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadBinary / WriteBinary use the compact binary CSR format.
var (
	ReadBinary  = graph.ReadBinary
	WriteBinary = graph.WriteBinary
)

// Kind selects the probabilistic set representation.
type Kind = core.Kind

// The available representations (§II-D and §IX of the paper).
const (
	// BF: Bloom filters — bitwise-AND intersections, highest accuracy.
	BF = core.BF
	// KHash: k-Hash MinHash — MLE estimator with exponential bounds.
	KHash = core.KHash
	// OneHash: 1-Hash bottom-k MinHash — fastest to construct.
	OneHash = core.OneHash
	// KMV: K-Minimum-Values — the §IX extension.
	KMV = core.KMV
	// HLL: HyperLogLog — the §X extension.
	HLL = core.HLL
)

// Estimator selects the |X∩Y| estimator within a representation.
type Estimator = core.Estimator

// Estimator variants.
const (
	// EstAuto uses the paper's default per representation.
	EstAuto = core.EstAuto
	// EstBFAnd is Eq. (2), the AND estimator.
	EstBFAnd = core.EstBFAnd
	// EstBFL is Eq. (4), the limiting estimator.
	EstBFL = core.EstBFL
	// EstBFOr is Eq. (29), the union-based estimator.
	EstBFOr = core.EstBFOr
	// Est1HSimple is the plain |M¹∩M¹|/k Jaccard.
	Est1HSimple = core.Est1HSimple
)

// ParseKind parses a representation name ("BF", "1H", "kmv", ...) as
// printed by Kind.String — the flag/wire form the cmds accept.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// ParseEstimator parses an estimator name ("auto", "and", "l", "or",
// "1hsimple", plus aliases) as printed by Estimator.String — the
// flag/wire form the cmds accept. The empty string is EstAuto.
func ParseEstimator(s string) (Estimator, error) { return core.ParseEstimator(s) }

// Config parameterizes Build; see the field documentation in
// internal/core. The zero value plus a Kind uses a 25% storage budget.
type Config = core.Config

// PG is the ProbGraph representation: one fixed-size sketch per vertex
// neighborhood. Its key method is IntCard(u, v), the |N_u ∩ N_v|
// estimator that all PG-enhanced algorithms plug in.
type PG = core.PG

// Build constructs sketches of all full neighborhoods N_v in parallel.
//
// Build is the one-shot batch path over a frozen graph. Calling it in a
// loop over successive versions of an evolving graph re-pays the whole
// construction cost per version — use NewDynamic (stream.DynamicGraph)
// there: it maintains the same sketches incrementally, bit-identically.
func Build(g *Graph, cfg Config) (*PG, error) { return core.Build(g, cfg) }

// BuildOriented constructs sketches of the oriented neighborhoods N+_v
// (required by FourCliqueCount).
func BuildOriented(o *Oriented, csrBits int64, cfg Config) (*PG, error) {
	return core.BuildOriented(o, csrBits, cfg)
}

// Measure identifies a vertex-similarity scheme (Listing 3).
type Measure = mining.Measure

// The vertex-similarity measures of Listing 3.
const (
	Jaccard            = mining.Jaccard
	Overlap            = mining.Overlap
	CommonNeighbors    = mining.CommonNeighbors
	TotalNeighbors     = mining.TotalNeighbors
	AdamicAdar         = mining.AdamicAdar
	ResourceAllocation = mining.ResourceAllocation
)

// Clustering is a Jarvis–Patrick clustering result.
type Clustering = mining.Clustering

// LinkPredResult is the outcome of the Listing 5 link-prediction harness.
type LinkPredResult = mining.LinkPredResult

// ExactTriangleCount counts triangles exactly with the parallel
// node-iterator baseline (workers <= 0 uses all cores). The orientation
// comes from the graph's default Session, so repeated counting no longer
// re-orients on every call.
//
// Deprecated: use Session.Run with the TC kernel, which adds
// cancellation, error bounds, and timing.
func ExactTriangleCount(g *Graph, workers int) int64 {
	return mining.ExactTC(orientedFor(g, OrientDegree, workers), workers)
}

// TriangleCount estimates the triangle count with the §VII PG estimator
// T̂C = (1/3)·Σ_{(u,v)∈E} |N_u∩N_v|̂.
//
// Deprecated: use Session.Run with TC{Mode: Sketched}.
func TriangleCount(g *Graph, pg *PG, workers int) float64 {
	return mining.PGTC(g, pg, workers)
}

// ExactFourCliqueCount counts 4-cliques exactly (Listing 2), over the
// default Session's cached orientation.
//
// Deprecated: use Session.Run with KClique{K: 4}.
func ExactFourCliqueCount(g *Graph, workers int) int64 {
	return mining.Exact4Clique(orientedFor(g, OrientDegree, workers), workers)
}

// FourCliqueCount estimates the 4-clique count; pg must hold oriented
// sketches built with BuildOriented over the same orientation.
//
// Deprecated: use Session.Run with KClique{K: 4, Mode: Sketched}.
func FourCliqueCount(o *Oriented, pg *PG, workers int) float64 {
	return mining.PG4Clique(o, pg, workers)
}

// KCliqueCount counts k-cliques (k >= 3) exactly, over the default
// Session's cached orientation.
//
// Deprecated: use Session.Run with the KClique kernel.
func KCliqueCount(g *Graph, k, workers int) int64 {
	return mining.ExactKClique(orientedFor(g, OrientDegree, workers), k, workers)
}

// PGKCliqueCount estimates the k-clique count (k >= 3) with the BF
// generalization of Listing 2: candidate lists stay exact, the closing
// cardinality is estimated on the cumulative AND of the prefix filters.
// pg must be a BF ProbGraph built over the same orientation.
//
// Deprecated: use Session.Run with KClique{K: k, Mode: Sketched}.
func PGKCliqueCount(o *Oriented, pg *PG, k, workers int) (float64, error) {
	return mining.PGKClique(o, pg, k, workers)
}

// DistResult is the outcome of a simulated distributed kernel run: the
// (estimated) result plus the network traffic it generated.
type DistResult = dist.Result

// DistMode selects the §VIII-F wire protocol for remote fetches.
type DistMode = dist.Mode

// DistNetStats is the byte/message accounting of a simulated run, with
// a per-node breakdown.
type DistNetStats = dist.NetStats

// Distributed-memory fetch protocols (§VIII-F).
const (
	// ShipNeighborhoods ships full CSR neighborhoods (the baseline).
	ShipNeighborhoods = dist.ShipNeighborhoods
	// ShipSketches ships fixed-size sketches (the ProbGraph protocol).
	ShipSketches = dist.ShipSketches
)

// DistributedTC runs triangle counting over `nodes` simulated
// distributed-memory nodes connected by a byte-counting channel network
// (§VIII-F): vertices are block-partitioned, remote neighborhoods are
// fetched on demand and cached per node. In ShipSketches mode pg must
// hold oriented sketches (BuildOriented); in ShipNeighborhoods mode pg
// may be nil and the count is exact.
//
// Deprecated: use Session.Run with the DistTC kernel.
func DistributedTC(g *Graph, o *Oriented, pg *PG, nodes int, mode dist.Mode) (*DistResult, error) {
	return dist.TC(g, o, pg, nodes, mode)
}

// DistributedSimilarity runs distributed vertex similarity over the
// same simulated cluster: every edge is scored at the owner of its
// lower endpoint, fetching the other endpoint's neighborhood (or
// fixed-size sketch) over the byte-counting network. The Result's Count
// is the mean similarity over all edges. In ShipSketches mode pg must
// hold full-neighborhood sketches (Build); only the counting measures
// (Jaccard, Overlap, CommonNeighbors, TotalNeighbors) are supported.
//
// Deprecated: use Session.Run with the DistSim kernel.
func DistributedSimilarity(g *Graph, pg *PG, nodes int, mode DistMode, m Measure) (*DistResult, error) {
	return dist.Sim(g, pg, nodes, mode, m)
}

// Similarity evaluates a vertex-similarity measure exactly.
//
// Deprecated: use Session.Run with the VertexSim kernel.
func Similarity(g *Graph, u, v uint32, m Measure) float64 {
	return mining.ExactSimilarity(g, u, v, m)
}

// PGSimilarity evaluates a vertex-similarity measure with the sketch
// estimator in place of the exact intersection.
//
// Deprecated: use Session.Run with VertexSim{Mode: Sketched}.
func PGSimilarity(g *Graph, pg *PG, u, v uint32, m Measure) float64 {
	return mining.PGSimilarity(g, pg, u, v, m)
}

// Cluster runs Jarvis–Patrick clustering (Listing 4) exactly: edges whose
// similarity exceeds tau survive; clusters are the connected components.
//
// Deprecated: use Session.Run with the JarvisPatrick kernel.
func Cluster(g *Graph, m Measure, tau float64, workers int) *Clustering {
	return mining.JarvisPatrickExact(g, m, tau, workers)
}

// PGCluster is the ProbGraph-enhanced Jarvis–Patrick clustering.
//
// Deprecated: use Session.Run with JarvisPatrick{Mode: Sketched}.
func PGCluster(g *Graph, pg *PG, m Measure, tau float64, workers int) *Clustering {
	return mining.JarvisPatrickPG(g, pg, m, tau, workers)
}

// LinkPrediction evaluates a link-prediction scheme (Listing 5): a
// fraction of edges is hidden, candidates are scored with the measure
// (exactly when pgCfg is nil, else with ProbGraph), and the recovery rate
// of the hidden edges is reported.
//
// Deprecated: use Session.Run with the LinkPred kernel.
func LinkPrediction(g *Graph, m Measure, removeFrac float64, seed uint64, pgCfg *Config, workers int) (*LinkPredResult, error) {
	return mining.EvaluateLinkPrediction(g, m, removeFrac, seed, pgCfg, workers)
}

// ClusteringCoefficient returns the exact average local clustering
// coefficient; PGClusteringCoefficient is the sketch-based estimate.
//
// Deprecated: use Session.Run with the ClusteringCoeff kernel.
func ClusteringCoefficient(g *Graph, workers int) float64 {
	return mining.LocalClusteringCoefficient(g, workers)
}

// LocalTriangleCounts returns the exact number of triangles through each
// vertex — the §III-A spam-detection / community signal.
//
// Deprecated: use Session.Run with the LocalTCAll kernel.
func LocalTriangleCounts(g *Graph, workers int) []int64 {
	return mining.LocalTC(g, workers)
}

// PGLocalTriangleCounts is the sketch-based per-vertex estimate.
//
// Deprecated: use Session.Run with LocalTCAll{Mode: Sketched}.
func PGLocalTriangleCounts(g *Graph, pg *PG, workers int) []float64 {
	return mining.PGLocalTC(g, pg, workers)
}

// PGClusteringCoefficient estimates the average local clustering
// coefficient through sketch intersections.
//
// Deprecated: use Session.Run with ClusteringCoeff{Mode: Sketched}.
func PGClusteringCoefficient(g *Graph, pg *PG, workers int) float64 {
	return mining.PGLocalClusteringCoefficient(g, pg, workers)
}

// --- serving: the online query engine (internal/serve) ---------------------

// Snapshot is the immutable unit of online serving: a graph, its
// orientation, and one resident PG per configured sketch kind.
type Snapshot = serve.Snapshot

// SnapshotConfig parameterizes OpenSnapshot; the zero value builds a
// single Bloom-filter PG at the default 25% budget.
type SnapshotConfig = serve.SnapshotConfig

// Engine answers typed point queries against a Snapshot through a
// coalescing request batcher and an LRU result cache.
type Engine = serve.Engine

// ServeOptions tunes the engine (workers, batching, cache size).
type ServeOptions = serve.Options

// ServeQuery is one typed request; ServeResult its answer.
type ServeQuery = serve.Query
type ServeResult = serve.Result

// ServeStats is the engine's observable state (/v1/stats payload).
type ServeStats = serve.Stats

// The serving query operations.
const (
	// OpTC is the snapshot-wide triangle-count estimate.
	OpTC = serve.OpTC
	// OpLocalTC estimates the triangles through one vertex.
	OpLocalTC = serve.OpLocalTC
	// OpSimilarity scores a vertex pair with a Listing 3 measure.
	OpSimilarity = serve.OpSimilarity
	// OpTopK ranks a vertex's 2-hop link-prediction candidates.
	OpTopK = serve.OpTopK
	// OpNeighbors returns an exact adjacency list.
	OpNeighbors = serve.OpNeighbors
	// OpPattern is the snapshot-wide pattern-count estimate; the query's
	// Pattern field names a builtin or edge-list spec.
	OpPattern = serve.OpPattern
)

// OpenSnapshot builds a serving snapshot: orientation plus one PG per
// configured sketch kind, all from one seed so answers are reproducible.
//
// For an evolving graph, do not re-OpenSnapshot per change (a full
// rebuild each time): create one NewDynamic graph, Freeze epochs from
// it, and hot-swap them into the engine with Engine.Swap — see stream.go.
func OpenSnapshot(g *Graph, cfg SnapshotConfig) (*Snapshot, error) { return serve.Open(g, cfg) }

// --- persistence: the binary artifact layer (internal/pgio) -----------------

// Artifact is the decoded form of a .pg binary artifact: the graph,
// optionally its orientation, and resident sketch sets by kind.
type Artifact = pgio.Artifact

// ArtifactInfo is an artifact's structural summary: version, total
// size, and per-section payload bytes and CRCs.
type ArtifactInfo = pgio.FileInfo

// SaveSnapshot writes a serving snapshot as a binary artifact: graph,
// orientation, and every resident sketch set, checksummed per section.
// A server booted from the artifact (OpenSnapshotArtifact, or pgserve
// -artifact) answers queries bit-for-bit like this one.
func SaveSnapshot(w io.Writer, s *Snapshot) (*ArtifactInfo, error) { return s.Save(w) }

// OpenSnapshotArtifact boots a serving snapshot from an artifact — the
// warm-start path: no edge-list parsing, no re-orientation, no sketch
// builds. Sketch geometry and seed come from the artifact; cfg may
// subset the resident kinds, bound workers, and override the estimator.
func OpenSnapshotArtifact(r io.Reader, cfg SnapshotConfig) (*Snapshot, error) {
	return serve.OpenArtifact(r, cfg)
}

// DecodeArtifact reads a binary artifact without building serving
// state: the decoded graph and sketches plus the structural summary.
// Corruption is reported through the typed pgio errors (bad magic,
// version, checksum, truncation, drift) — never a panic.
func DecodeArtifact(r io.Reader) (*Artifact, *ArtifactInfo, error) { return pgio.DecodeWithInfo(r) }

// Serve starts a query engine over the snapshot. Close it when done.
// For HTTP serving see cmd/pgserve, which wraps this engine; for
// serving under live edge ingest see the streaming API in stream.go.
func Serve(s *Snapshot, opts ServeOptions) *Engine { return serve.New(s, opts) }

// --- theory: concentration bounds as executable functions ------------------

// GraphMoments carries the degree-sequence quantities the TC bounds use.
type GraphMoments = estimator.GraphMoments

// MomentsOf computes GraphMoments for a graph.
func MomentsOf(g *Graph) GraphMoments {
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(uint32(v))
	}
	return estimator.Moments(degs, g.NumEdges())
}

// Bound calculators from §IV and §VII (see internal/estimator for the
// formulas and preconditions).
var (
	// BFMSEBound is Prop. IV.1: the MSE bound of the AND estimator.
	BFMSEBound = estimator.BFMSEBound
	// BFDeviation inverts Eq. (3) at a target confidence.
	BFDeviation = estimator.BFDeviation
	// MinHashTail is Props. IV.2/IV.3.
	MinHashTail = estimator.MinHashTail
	// MinHashDeviation inverts the MinHash bound at a target confidence.
	MinHashDeviation = estimator.MinHashDeviation
	// TCBoundBF is the Bloom filter statement of Theorem VII.1.
	TCBoundBF = estimator.TCBoundBF
	// TCBoundMinHash is the MinHash statement of Theorem VII.1.
	TCBoundMinHash = estimator.TCBoundMinHash
	// TCDeviationMinHash inverts TCBoundMinHash at a target confidence.
	TCDeviationMinHash = estimator.TCDeviationMinHash
	// KMVCardInterval is Prop. A.7 (regularized incomplete beta).
	KMVCardInterval = estimator.KMVCardInterval
	// PatternDeviationBF generalizes the Theorem VII.1 Bloom statement to
	// arbitrary pattern plans (union over estimator calls).
	PatternDeviationBF = estimator.PatternDeviationBF
	// PatternDeviationMinHash is the MinHash counterpart.
	PatternDeviationMinHash = estimator.PatternDeviationMinHash
)
