package probgraph

import (
	"context"

	"probgraph/internal/pattern"
	"probgraph/internal/session"
)

// Session is the unified entry point of the library: it binds one
// immutable Graph to lazily-built, cached derived state — the degree and
// degeneracy orientations, one PG per distinct sketch configuration
// (Kind, Budget, Seed, ...) — and runs every mining kernel, exact or
// sketched, through one context-aware call:
//
//	sess, err := probgraph.NewSession(g,
//		probgraph.WithBudget(0.25), probgraph.WithSeed(42))
//	res, err := sess.Run(ctx, probgraph.TC{Mode: probgraph.Sketched})
//	// res.Value, res.Bound (Thm VII.1, 95%), res.Elapsed
//
// Results are bit-identical to the flat functions below on the same
// configuration; the Session adds caching (no repeated re-orientation,
// no duplicate sketch builds), cancellation (ctx is observed at chunk
// boundaries), validation errors in place of panics, and typed results.
// Sessions are safe for concurrent use: concurrent Runs needing the same
// derived state share one build.
type Session = session.Session

// SessionOption configures NewSession / Session.With.
type SessionOption = session.Option

// Mode selects a kernel's exact baseline or its sketch estimator.
type Mode = session.Mode

// The kernel execution modes; the zero value is Exact.
const (
	Exact    = session.Exact
	Sketched = session.Sketched
)

// OrientKind selects the cached orientation counting kernels run over.
type OrientKind = session.OrientKind

// The available orientations.
const (
	OrientDegree     = session.OrientDegree
	OrientDegeneracy = session.OrientDegeneracy
)

// Result is the typed outcome of Session.Run: scalar value, Theorem
// VII.1 error bound where the theory provides one, wall-clock timing,
// and kernel-specific payloads (Clusters, LinkPred, Locals, Net).
type Result = session.Result

// Kernel is one mining problem for Session.Run; the concrete kernels are
// TC, KClique, VertexSim, JarvisPatrick, LinkPred, LocalTC, LocalTCAll,
// ClusteringCoeff, DistTC and DistSim.
type Kernel = session.Kernel

// The kernels. See the internal/session documentation for the fields.
type (
	// TC is triangle counting (Listing 1 / §VII).
	TC = session.TC
	// KClique is k-clique counting (Listing 2); K = 4 uses the paper's
	// reformulated 4-clique path.
	KClique = session.KClique
	// VertexSim scores one vertex pair with a Listing 3 measure.
	VertexSim = session.VertexSim
	// JarvisPatrick is the Listing 4 clustering kernel.
	JarvisPatrick = session.JarvisPatrick
	// LinkPred is the Listing 5 link-prediction harness.
	LinkPred = session.LinkPred
	// LocalTC counts the triangles through one vertex.
	LocalTC = session.LocalTC
	// LocalTCAll counts the triangles through every vertex.
	LocalTCAll = session.LocalTCAll
	// ClusteringCoeff is the average local clustering coefficient.
	ClusteringCoeff = session.ClusteringCoeff
	// DistTC is triangle counting over the simulated cluster (§VIII-F).
	DistTC = session.DistTC
	// DistSim is distributed mean edge similarity (§VIII-F).
	DistSim = session.DistSim
	// PatternCount enumerates a PatternSpec through its compiled,
	// symmetry-broken exploration plan — exact, sketch-pruned exact
	// (Prune), or sketch-estimated with a generalized Thm VII.1 bound.
	PatternCount = session.PatternCount
)

// PatternSpec is a small connected pattern graph (≤ 8 vertices): the
// builtins below, or any connected edge list via ParsePattern.
type PatternSpec = pattern.Pattern

// PatternStats is the enumeration telemetry a PatternCount result
// carries: embeddings, candidates, sketch prunes, exact edge checks and
// estimator-call counts.
type PatternStats = pattern.Stats

// ParsePattern parses a pattern spec: a builtin name ("triangle",
// "diamond", "4path", "4cycle", "star4", "clique4", aliases included)
// or an edge list like "0-1,1-2,2-0". Malformed specs return typed
// errors (pattern.ErrSyntax et al.), never panics.
func ParsePattern(spec string) (*PatternSpec, error) { return pattern.Parse(spec) }

// Pattern is the one-line way to run pattern mining through a Session:
//
//	res, err := sess.Run(ctx, probgraph.Pattern(p))
//
// It estimates with the sketch layer and reports res.Bound where the
// theory provides one; use PatternCount directly for exact or
// sketch-pruned exact enumeration.
func Pattern(p *PatternSpec) PatternCount {
	return PatternCount{P: p, Mode: Sketched}
}

// The builtin patterns.
var (
	// TrianglePattern is the 3-cycle.
	TrianglePattern = pattern.Triangle
	// DiamondPattern is the triangle-with-chord (4 vertices, 5 edges).
	DiamondPattern = pattern.Diamond
	// FourPathPattern is the simple path on 4 vertices.
	FourPathPattern = pattern.FourPath
	// FourCyclePattern is the 4-cycle.
	FourCyclePattern = pattern.FourCycle
	// StarPattern builds the k-star (k leaves, 2 ≤ k ≤ 7).
	StarPattern = pattern.Star
	// CliquePattern builds the k-clique (3 ≤ k ≤ 8).
	CliquePattern = pattern.Clique
)

// NewSession binds a Session to a graph. The zero configuration matches
// the flat API: all cores, Bloom filters at a 25% budget, seed 0, degree
// orientation.
func NewSession(g *Graph, opts ...SessionOption) (*Session, error) {
	return session.New(g, opts...)
}

// WithWorkers bounds kernel and build parallelism (<=0: all cores).
func WithWorkers(w int) SessionOption { return session.WithWorkers(w) }

// WithSeed sets the seed driving every hash family and the link
// prediction edge removal; identical seeds reproduce results exactly.
func WithSeed(seed uint64) SessionOption { return session.WithSeed(seed) }

// WithKind selects the sketch representation (default BF).
func WithKind(k Kind) SessionOption { return session.WithKind(k) }

// WithEstimator selects the |X∩Y| estimator within the representation.
func WithEstimator(e Estimator) SessionOption { return session.WithEstimator(e) }

// WithBudget sets the storage budget s ∈ (0, 1] (default 0.25).
func WithBudget(s float64) SessionOption { return session.WithBudget(s) }

// WithNumHashes sets the Bloom hash-function count b (default 2).
func WithNumHashes(b int) SessionOption { return session.WithNumHashes(b) }

// WithSketchK fixes the MinHash/KMV sketch size instead of deriving it
// from the storage budget.
func WithSketchK(k int) SessionOption { return session.WithSketchK(k) }

// WithStoreElems makes 1-Hash sketches retain element IDs, enabling the
// sample-based weighted measures and the sampled 4-clique path.
func WithStoreElems(on bool) SessionOption { return session.WithStoreElems(on) }

// WithOrientation selects the orientation counting kernels run over
// (default OrientDegree).
func WithOrientation(o OrientKind) SessionOption { return session.WithOrientation(o) }

// --- the per-graph default Sessions behind the flat API --------------------

// sessionFor returns g's default Session, stored on the graph itself so
// the deprecated flat functions stop recomputing derived state (notably
// the orientation, which the flat API rebuilt on every call) without
// pinning anything process-globally: the cache lives and dies with the
// graph.
func sessionFor(g *Graph) *Session {
	if g == nil {
		// Surface the nil where the caller dereferences, matching the
		// flat API's historical behavior.
		panic("probgraph: nil graph")
	}
	return g.Derived(func() any {
		s, err := session.New(g)
		if err != nil {
			panic(err) // unreachable: g is non-nil and options are empty
		}
		return s
	}).(*Session)
}

// orientedFor returns g's cached orientation via its default Session.
func orientedFor(g *Graph, kind OrientKind, workers int) *Oriented {
	s, err := sessionFor(g).With(WithOrientation(kind), WithWorkers(workers))
	if err != nil {
		panic(err) // unreachable: both options always validate
	}
	o, err := s.Oriented(context.Background())
	if err != nil {
		panic(err) // unreachable: a background context never cancels
	}
	return o
}
